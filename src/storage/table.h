#ifndef NASHDB_STORAGE_TABLE_H_
#define NASHDB_STORAGE_TABLE_H_

#include <cstdint>
#include <vector>

#include "common/types.h"

namespace nashdb {

/// Aggregate over a tuple range: what the simulated OLAP queries compute.
struct Aggregate {
  std::uint64_t count = 0;
  std::int64_t sum = 0;
  std::int64_t min = 0;
  std::int64_t max = 0;

  /// Merges a partial aggregate (for combining per-fragment results).
  void Merge(const Aggregate& other);

  friend bool operator==(const Aggregate&, const Aggregate&) = default;
};

/// A source-of-truth table: the authoritative clustered data that fragment
/// replicas are copies of. Values are a deterministic function of the
/// table id, seed, and tuple position, so ground truth for any range is
/// computable without materializing the table — but replicas materialize
/// real buffers, so divergence (a broken transition, a stale copy) is
/// detectable.
class SourceTable {
 public:
  SourceTable(TableId id, TupleCount tuples, std::uint64_t seed);

  TableId id() const { return id_; }
  TupleCount tuples() const { return tuples_; }

  /// The value of one tuple (pure function of position).
  std::int64_t ValueAt(TupleIndex x) const;

  /// Materializes the payloads of [range) — what a node copies when it
  /// stores a fragment replica.
  std::vector<std::int64_t> Materialize(const TupleRange& range) const;

  /// Ground-truth aggregate over [range).
  Aggregate AggregateRange(const TupleRange& range) const;

 private:
  TableId id_;
  TupleCount tuples_;
  std::uint64_t seed_;
};

}  // namespace nashdb

#endif  // NASHDB_STORAGE_TABLE_H_
