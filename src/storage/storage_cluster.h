#ifndef NASHDB_STORAGE_STORAGE_CLUSTER_H_
#define NASHDB_STORAGE_STORAGE_CLUSTER_H_

#include <map>
#include <tuple>
#include <vector>

#include "common/query.h"
#include "common/status.h"
#include "replication/cluster_config.h"
#include "routing/router.h"
#include "storage/table.h"
#include "transition/planner.h"

namespace nashdb {

/// Materialized shared-nothing storage: every node of a ClusterConfig
/// holds real buffers for its fragment replicas, transitions move real
/// bytes, and scans compute real aggregates. This is the substrate that
/// verifies the distribution machinery end to end — after any sequence of
/// fragmentations, replications, and minimal-transfer transitions, every
/// replica must still be byte-identical to the source table and every
/// routed scan must return the ground-truth answer.
class StorageCluster {
 public:
  explicit StorageCluster(std::vector<SourceTable> tables);

  /// Loads `config` from scratch (a bootstrap: every replica is copied
  /// from the source tables). Returns the tuples copied.
  TupleCount Bootstrap(const ClusterConfig& config);

  /// Transitions the materialized data to `next` following `plan`
  /// (node-to-node matching from PlanTransition): surviving nodes keep
  /// the bytes they already hold and copy only what they lack; fresh
  /// nodes copy everything they need. Returns the tuples actually copied
  /// from sources, which must equal the plan's priced transfer.
  TupleCount ApplyTransition(const ClusterConfig& next,
                             const TransitionPlan& plan);

  /// Executes one routed range scan: each fragment read fetches the
  /// stored replica bytes on the routed node (failing if the node does
  /// not hold them) and folds the scan-overlapping part into the
  /// aggregate.
  Result<Aggregate> ExecuteScan(const Scan& scan,
                                const std::vector<FragmentRequest>& requests,
                                const std::vector<RoutedRead>& routed) const;

  /// Audits every replica on every node against the source tables;
  /// returns the first corruption found, or OK.
  Status VerifyAllReplicas() const;

  /// Ground truth for a scan (straight from the source table).
  Aggregate GroundTruth(const Scan& scan) const;

  std::size_t node_count() const { return nodes_.size(); }

  /// Tuples materialized on one node.
  TupleCount NodeBytes(NodeId node) const;

 private:
  struct StoredFragment {
    TableId table;
    TupleRange range;
    std::vector<std::int64_t> data;
  };
  // One node: fragment replicas keyed by (table, start, end).
  using NodeStore = std::map<std::tuple<TableId, TupleIndex, TupleIndex>,
                             StoredFragment>;

  const SourceTable& TableOf(TableId id) const;

  // Fills `store` with the fragments of `config`'s node `m`, reusing
  // buffers from `previous` where the data is already present; counts
  // copied tuples into *copied.
  NodeStore BuildNodeStore(const ClusterConfig& config, NodeId node,
                           const NodeStore* previous, TupleCount* copied);

  std::vector<SourceTable> tables_;
  std::vector<NodeStore> nodes_;
  ClusterConfig current_config_;
};

}  // namespace nashdb

#endif  // NASHDB_STORAGE_STORAGE_CLUSTER_H_
