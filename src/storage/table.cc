#include "storage/table.h"

#include <algorithm>
#include <limits>

#include "common/logging.h"

namespace nashdb {
namespace {

std::uint64_t Mix(std::uint64_t z) {
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

}  // namespace

void Aggregate::Merge(const Aggregate& other) {
  if (other.count == 0) return;
  if (count == 0) {
    *this = other;
    return;
  }
  count += other.count;
  sum += other.sum;
  min = std::min(min, other.min);
  max = std::max(max, other.max);
}

SourceTable::SourceTable(TableId id, TupleCount tuples, std::uint64_t seed)
    : id_(id), tuples_(tuples), seed_(seed) {}

std::int64_t SourceTable::ValueAt(TupleIndex x) const {
  NASHDB_DCHECK(x < tuples_);
  // Small bounded payloads keep range sums far from overflow.
  const std::uint64_t h =
      Mix(seed_ ^ (static_cast<std::uint64_t>(id_) << 48) ^ x);
  return static_cast<std::int64_t>(h % 2001) - 1000;  // in [-1000, 1000]
}

std::vector<std::int64_t> SourceTable::Materialize(
    const TupleRange& range) const {
  NASHDB_CHECK_LE(range.end, tuples_);
  std::vector<std::int64_t> data;
  data.reserve(range.size());
  for (TupleIndex x = range.start; x < range.end; ++x) {
    data.push_back(ValueAt(x));
  }
  return data;
}

Aggregate SourceTable::AggregateRange(const TupleRange& range) const {
  NASHDB_CHECK_LE(range.end, tuples_);
  Aggregate agg;
  for (TupleIndex x = range.start; x < range.end; ++x) {
    Aggregate one;
    one.count = 1;
    one.sum = one.min = one.max = ValueAt(x);
    agg.Merge(one);
  }
  return agg;
}

}  // namespace nashdb
