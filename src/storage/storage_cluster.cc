#include "storage/storage_cluster.h"

#include <algorithm>
#include <sstream>

#include "common/logging.h"

namespace nashdb {
StorageCluster::StorageCluster(std::vector<SourceTable> tables)
    : tables_(std::move(tables)) {}

const SourceTable& StorageCluster::TableOf(TableId id) const {
  for (const SourceTable& t : tables_) {
    if (t.id() == id) return t;
  }
  NASHDB_CHECK(false) << "unknown table " << id;
  return tables_.front();
}

StorageCluster::NodeStore StorageCluster::BuildNodeStore(
    const ClusterConfig& config, NodeId node, const NodeStore* previous,
    TupleCount* copied) {
  // Previous holdings per table as sorted, coalesced intervals: tuples the
  // node already has locally and does not need to copy over the network.
  std::map<TableId, std::vector<TupleRange>> have;
  if (previous != nullptr) {
    for (const auto& [key, frag] : *previous) {
      (void)key;
      have[frag.table].push_back(frag.range);
    }
    for (auto& [table, ranges] : have) {
      (void)table;
      std::sort(ranges.begin(), ranges.end(),
                [](const TupleRange& a, const TupleRange& b) {
                  return a.start < b.start;
                });
      std::vector<TupleRange> merged;
      for (const TupleRange& r : ranges) {
        if (!merged.empty() && merged.back().end >= r.start) {
          merged.back().end = std::max(merged.back().end, r.end);
        } else {
          merged.push_back(r);
        }
      }
      ranges = std::move(merged);
    }
  }

  NodeStore store;
  for (FlatFragmentId fid : config.NodeFragments(node)) {
    const FragmentInfo& f = config.fragment(fid);
    StoredFragment sf;
    sf.table = f.table;
    sf.range = f.range;
    sf.data = TableOf(f.table).Materialize(f.range);

    // Network accounting: tuples of this fragment not already local.
    TupleCount overlap = 0;
    auto it = have.find(f.table);
    if (it != have.end()) {
      for (const TupleRange& r : it->second) {
        overlap += r.Intersect(f.range).size();
      }
    }
    *copied += f.range.size() - overlap;
    store[{f.table, f.range.start, f.range.end}] = std::move(sf);
  }
  return store;
}

TupleCount StorageCluster::Bootstrap(const ClusterConfig& config) {
  TupleCount copied = 0;
  nodes_.clear();
  nodes_.resize(config.node_count());
  for (NodeId m = 0; m < config.node_count(); ++m) {
    nodes_[m] = BuildNodeStore(config, m, nullptr, &copied);
  }
  current_config_ = config;
  return copied;
}

TupleCount StorageCluster::ApplyTransition(const ClusterConfig& next,
                                           const TransitionPlan& plan) {
  TupleCount copied = 0;
  std::vector<NodeStore> new_nodes(next.node_count());
  for (const NodeTransition& move : plan.moves) {
    if (move.new_node == kInvalidNode) continue;  // decommissioned
    const NodeStore* previous = nullptr;
    if (move.old_node != kInvalidNode && move.old_node < nodes_.size()) {
      previous = &nodes_[move.old_node];
    }
    new_nodes[move.new_node] =
        BuildNodeStore(next, move.new_node, previous, &copied);
  }
  nodes_ = std::move(new_nodes);
  current_config_ = next;
  return copied;
}

Result<Aggregate> StorageCluster::ExecuteScan(
    const Scan& scan, const std::vector<FragmentRequest>& requests,
    const std::vector<RoutedRead>& routed) const {
  Aggregate agg;
  for (const RoutedRead& rr : routed) {
    const FragmentRequest& req = requests[rr.request_index];
    const FragmentInfo& f = current_config_.fragment(req.frag);
    if (rr.node >= nodes_.size()) {
      return Status::NotFound("routed to a node with no storage");
    }
    const NodeStore& store = nodes_[rr.node];
    auto it = store.find({f.table, f.range.start, f.range.end});
    if (it == store.end()) {
      std::ostringstream os;
      os << "node " << rr.node << " does not hold fragment of table "
         << f.table << " [" << f.range.start << ", " << f.range.end << ")";
      return Status::NotFound(os.str());
    }
    // Block granularity reads the full fragment; only the overlap with
    // the scan contributes to the answer.
    const TupleRange inter = f.range.Intersect(scan.range);
    const StoredFragment& sf = it->second;
    for (TupleIndex x = inter.start; x < inter.end; ++x) {
      Aggregate one;
      one.count = 1;
      one.sum = one.min = one.max =
          sf.data[static_cast<std::size_t>(x - sf.range.start)];
      agg.Merge(one);
    }
  }
  return agg;
}

Status StorageCluster::VerifyAllReplicas() const {
  for (NodeId m = 0; m < nodes_.size(); ++m) {
    for (const auto& [key, sf] : nodes_[m]) {
      (void)key;
      const SourceTable& table = TableOf(sf.table);
      if (sf.data.size() != sf.range.size()) {
        return Status::Internal("replica buffer size mismatch");
      }
      for (TupleIndex x = sf.range.start; x < sf.range.end; ++x) {
        if (sf.data[static_cast<std::size_t>(x - sf.range.start)] !=
            table.ValueAt(x)) {
          std::ostringstream os;
          os << "corrupt replica on node " << m << " at tuple " << x;
          return Status::Internal(os.str());
        }
      }
    }
  }
  return Status::OK();
}

Aggregate StorageCluster::GroundTruth(const Scan& scan) const {
  return TableOf(scan.table).AggregateRange(scan.range);
}

TupleCount StorageCluster::NodeBytes(NodeId node) const {
  TupleCount total = 0;
  for (const auto& [key, sf] : nodes_[node]) {
    (void)key;
    total += sf.range.size();
  }
  return total;
}

}  // namespace nashdb
