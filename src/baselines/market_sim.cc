#include "baselines/market_sim.h"

#include <numeric>

#include "common/logging.h"
#include "common/random.h"

namespace nashdb {

MarketSimResult SimulateReplicaMarket(const ReplicationParams& params,
                                      std::vector<FragmentInfo> fragments,
                                      std::uint64_t seed,
                                      std::size_t max_rounds) {
  MarketSimResult result;
  Rng rng(seed);

  std::vector<std::size_t> order(fragments.size());
  std::iota(order.begin(), order.end(), 0);

  for (std::size_t round = 0; round < max_rounds; ++round) {
    ++result.rounds;
    bool any_move = false;
    rng.Shuffle(&order);
    for (std::size_t idx : order) {
      FragmentInfo& f = fragments[idx];
      const Money cost = ReplicaCost(f.size(), params);
      // One better-response action per fragment per round — the firms do
      // not coordinate, so the market inches toward the fixed point.
      if (params.max_replicas == 0 || f.replicas < params.max_replicas) {
        // A prospective entrant stocks the replica if it clears a profit.
        if (ReplicaIncome(f.value, f.replicas + 1, params) - cost > 0.0) {
          ++f.replicas;
          ++result.moves;
          any_move = true;
          continue;
        }
      }
      if (f.replicas > params.min_replicas) {
        // An incumbent abandons a loss-making replica.
        if (ReplicaIncome(f.value, f.replicas, params) - cost < 0.0) {
          --f.replicas;
          ++result.moves;
          any_move = true;
        }
      }
    }
    if (!any_move) {
      result.converged = true;
      break;
    }
  }

  result.fragments = std::move(fragments);
  return result;
}

}  // namespace nashdb
