#ifndef NASHDB_BASELINES_THRESHOLD_SYSTEM_H_
#define NASHDB_BASELINES_THRESHOLD_SYSTEM_H_

#include <cstdint>
#include <memory>
#include <optional>

#include "engine/system.h"
#include "value/estimator.h"
#include "workload/workload.h"

namespace nashdb {

/// Options for the E-Store-style thresholding baseline (paper §10.3,
/// "Threshold"). The tuning knob is `num_nodes`: the cluster size is fixed
/// and all data is spread over exactly that many nodes; more nodes cost
/// more but serve queries faster.
struct ThresholdOptions {
  std::size_t window_scans = 50;
  /// Fixed cluster size (the sweep parameter of Figures 7/8).
  std::size_t num_nodes = 8;
  TupleCount node_disk = 2'000'000;
  Money node_cost = 10.0;
  /// A tuple is "hot" when its access frequency exceeds this multiple of
  /// the database-wide mean frequency.
  double hot_multiplier = 2.0;
  /// Granularity for carving cold data into placement blocks.
  TupleCount cold_block_tuples = 200'000;
  /// Cap on hot fragments per table (hot chunks beyond the cap are merged
  /// with neighbors), keeping placement tractable.
  std::size_t max_hot_frags = 4096;
};

/// E-Store-like baseline: classifies tuples as hot/cold by raw access
/// frequency (no prices), places hot fragments one by one on the
/// least-loaded node ("Greedy extended" of [42]), carves cold data into
/// large blocks, and replicates hot data in proportion to access frequency
/// until the fixed cluster's spare disk is exhausted. Priority-agnostic by
/// design — this is the property the paper's prioritization experiments
/// contrast against.
class ThresholdSystem : public DistributionSystem {
 public:
  ThresholdSystem(Dataset dataset, const ThresholdOptions& options);

  std::string_view name() const override { return "Threshold"; }
  void Observe(const Query& query) override;
  ClusterConfig BuildConfig() override;
  void Reset() override;

 private:
  Dataset dataset_;
  ThresholdOptions options_;
  std::unique_ptr<TupleValueEstimator> freq_estimator_;
  /// Previous configuration; reconfigurations after the first are placed
  /// incrementally against it (E-Store migrates deltas rather than
  /// rebuilding placements, and fresh placements would dominate the
  /// Figure 9b transfer measurements with artificial churn).
  std::optional<ClusterConfig> last_config_;
};

}  // namespace nashdb

#endif  // NASHDB_BASELINES_THRESHOLD_SYSTEM_H_
