#include "baselines/hypergraph_system.h"

#include <algorithm>
#include <map>
#include <numeric>
#include <set>

#include "common/logging.h"
#include "replication/incremental.h"
#include "replication/packer.h"

namespace nashdb {

HypergraphSystem::HypergraphSystem(Dataset dataset,
                                   const HypergraphSystemOptions& options)
    : dataset_(std::move(dataset)),
      options_(options),
      freq_estimator_(
          std::make_unique<TupleValueEstimator>(options.window_scans)) {
  NASHDB_CHECK_GT(options_.num_partitions, 0u);
  NASHDB_CHECK_GT(options_.node_disk, 0u);
}

void HypergraphSystem::Observe(const Query& query) {
  // Frequency semantics: price == size makes V(x) the access frequency.
  Query q = query;
  for (Scan& s : q.scans) s.price = static_cast<Money>(s.range.size());
  freq_estimator_->AddQuery(q);
}

ClusterConfig HypergraphSystem::BuildConfig() {
  const TupleCount total_tuples = dataset_.TotalTuples();
  NASHDB_CHECK_GT(total_tuples, 0u);
  const std::size_t k = options_.num_partitions;

  // Partition each table into a share of the k global partitions
  // proportional to its size (at least one part per non-empty table).
  std::vector<FragmentInfo> fragments;
  HypergraphFragmenter::Options frag_opts;
  frag_opts.max_imbalance = options_.max_imbalance;
  HypergraphFragmenter fragmenter(frag_opts);

  std::vector<Scan> table_scans;
  for (const TableSpec& table : dataset_.tables) {
    if (table.tuples == 0) continue;
    double share = static_cast<double>(table.tuples) /
                   static_cast<double>(total_tuples) *
                   static_cast<double>(k);
    std::size_t k_t = std::max<std::size_t>(
        1, static_cast<std::size_t>(share + 0.5));
    // Every part must fit one node.
    const std::size_t min_parts = static_cast<std::size_t>(
        (table.tuples + options_.node_disk - 1) / options_.node_disk);
    k_t = std::max(k_t, min_parts);

    const ValueProfile profile =
        freq_estimator_->Profile(table.id, table.tuples);
    table_scans.clear();
    for (const Scan& s : freq_estimator_->window()) {
      if (s.table == table.id) table_scans.push_back(s);
    }
    FragmentationContext ctx;
    ctx.table = table.id;
    ctx.profile = &profile;
    ctx.window_scans = table_scans;

    const FragmentationScheme scheme = fragmenter.Refragment(ctx, k_t);
    NASHDB_CHECK(scheme.Valid());
    for (std::size_t i = 0; i < scheme.fragments.size(); ++i) {
      FragmentInfo info;
      info.table = table.id;
      info.index_in_table = static_cast<FragmentId>(i);
      info.range = scheme.fragments[i];
      info.value = profile.TotalValue(info.range);
      info.replicas = 1;
      fragments.push_back(info);
    }
  }

  // Base placement: parts onto exactly k nodes, first-fit decreasing by
  // size (co-locating nothing in particular — SWORD treats parts as the
  // placement unit).
  std::vector<std::vector<FlatFragmentId>> node_frags(k);
  std::vector<TupleCount> node_used(k, 0);
  std::vector<std::size_t> order(fragments.size());
  std::iota(order.begin(), order.end(), 0);
  std::sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) {
    return fragments[a].size() > fragments[b].size();
  });
  std::vector<NodeId> home(fragments.size(), kInvalidNode);
  for (std::size_t idx : order) {
    std::size_t best = k;
    for (std::size_t m = 0; m < k; ++m) {
      if (node_used[m] + fragments[idx].size() > options_.node_disk) continue;
      if (best == k || node_used[m] < node_used[best]) best = m;
    }
    NASHDB_CHECK_LT(best, k)
        << "Hypergraph cluster too small: " << k << " nodes of "
        << options_.node_disk << " tuples cannot hold the database";
    node_frags[best].push_back(static_cast<FlatFragmentId>(idx));
    node_used[best] += fragments[idx].size();
    home[idx] = static_cast<NodeId>(best);
  }

  // Improved-LMBR-style replication: consolidate the heaviest window
  // scans. For each scan spanning > 1 node, try to copy its missing
  // fragments onto the involved node with the most free space.
  std::vector<std::set<FlatFragmentId>> holds(k);
  for (std::size_t m = 0; m < k; ++m) {
    holds[m].insert(node_frags[m].begin(), node_frags[m].end());
  }
  // Fragment ranges per table sorted by start for overlap lookups.
  std::map<TableId, std::vector<FlatFragmentId>> by_table;
  for (FlatFragmentId fid = 0; fid < fragments.size(); ++fid) {
    by_table[fragments[fid].table].push_back(fid);
  }

  std::vector<Scan> window(freq_estimator_->window().begin(),
                           freq_estimator_->window().end());
  std::sort(window.begin(), window.end(), [](const Scan& a, const Scan& b) {
    return a.range.size() > b.range.size();
  });
  for (const Scan& s : window) {
    auto it = by_table.find(s.table);
    if (it == by_table.end()) continue;
    std::vector<FlatFragmentId> needed;
    for (FlatFragmentId fid : it->second) {
      if (fragments[fid].range.Overlaps(s.range)) needed.push_back(fid);
    }
    if (needed.size() < 2) continue;
    // Nodes already touched by the scan.
    std::set<NodeId> span_nodes;
    for (FlatFragmentId fid : needed) span_nodes.insert(home[fid]);
    if (span_nodes.size() < 2) continue;
    // Try to consolidate onto the involved node with the most free space.
    NodeId target = kInvalidNode;
    for (NodeId m : span_nodes) {
      if (target == kInvalidNode || node_used[m] < node_used[target]) {
        target = m;
      }
    }
    TupleCount extra = 0;
    bool feasible = true;
    for (FlatFragmentId fid : needed) {
      if (holds[target].count(fid)) continue;
      extra += fragments[fid].size();
      if (node_used[target] + extra > options_.node_disk) {
        feasible = false;
        break;
      }
    }
    if (!feasible) continue;
    for (FlatFragmentId fid : needed) {
      if (holds[target].insert(fid).second) {
        node_frags[target].push_back(fid);
        node_used[target] += fragments[fid].size();
      }
    }
  }

  ReplicationParams params;
  params.node_cost = options_.node_cost;
  params.node_disk = options_.node_disk;
  params.window_scans = freq_estimator_->window_scans();
  params.min_replicas = 1;

  if (last_config_.has_value()) {
    // Derive this round's replica counts from the fresh native placement,
    // then place them incrementally against the previous configuration.
    std::vector<std::size_t> counts(fragments.size(), 0);
    for (const auto& frags : node_frags) {
      for (FlatFragmentId fid : frags) ++counts[fid];
    }
    for (std::size_t i = 0; i < fragments.size(); ++i) {
      fragments[i].replicas = counts[i];
    }
    IncrementalOptions inc;
    inc.max_nodes = k;
    Result<ClusterConfig> config =
        RepackIncremental(params, std::move(fragments), &*last_config_, inc);
    NASHDB_CHECK(config.ok()) << config.status().ToString();
    last_config_ = *config;
    return std::move(config).value();
  }

  Result<ClusterConfig> config =
      BuildConfigFromPlacement(params, std::move(fragments), node_frags);
  NASHDB_CHECK(config.ok()) << config.status().ToString();
  last_config_ = *config;
  return std::move(config).value();
}

void HypergraphSystem::Reset() {
  freq_estimator_ =
      std::make_unique<TupleValueEstimator>(options_.window_scans);
  last_config_.reset();
}

}  // namespace nashdb
