#include "baselines/threshold_system.h"

#include <algorithm>
#include <limits>
#include <numeric>

#include "common/logging.h"
#include "replication/incremental.h"
#include "replication/packer.h"

namespace nashdb {
namespace {

// Rewrites a query so every scan carries price == size, making the
// estimator's V(x) equal to the fraction of window scans touching x — raw
// access frequency, the only statistic E-Store uses.
Query AsFrequencyQuery(const Query& query) {
  Query q = query;
  for (Scan& s : q.scans) {
    s.price = static_cast<Money>(s.range.size());
  }
  return q;
}

struct PlannedFragment {
  FragmentInfo info;
  bool hot = false;
};

}  // namespace

ThresholdSystem::ThresholdSystem(Dataset dataset,
                                 const ThresholdOptions& options)
    : dataset_(std::move(dataset)),
      options_(options),
      freq_estimator_(
          std::make_unique<TupleValueEstimator>(options.window_scans)) {
  NASHDB_CHECK_GT(options_.num_nodes, 0u);
  NASHDB_CHECK_GT(options_.node_disk, 0u);
}

void ThresholdSystem::Observe(const Query& query) {
  freq_estimator_->AddQuery(AsFrequencyQuery(query));
}

ClusterConfig ThresholdSystem::BuildConfig() {
  // Global mean access frequency (tuple-weighted across all tables).
  Money freq_mass = 0.0;
  TupleCount total_tuples = 0;
  std::vector<ValueProfile> profiles;
  profiles.reserve(dataset_.tables.size());
  for (const TableSpec& t : dataset_.tables) {
    profiles.push_back(freq_estimator_->Profile(t.id, t.tuples));
    freq_mass += profiles.back().GrandTotal();
    total_tuples += t.tuples;
  }
  NASHDB_CHECK_GT(total_tuples, 0u);
  const Money mean_freq = freq_mass / static_cast<Money>(total_tuples);
  const Money hot_cutoff = options_.hot_multiplier * mean_freq;

  // Fragmentation: hot runs become fragments of their own; cold spans are
  // carved into large placement blocks.
  std::vector<PlannedFragment> planned;
  const TupleCount max_frag =
      std::min<TupleCount>(options_.node_disk, options_.cold_block_tuples);
  for (std::size_t ti = 0; ti < dataset_.tables.size(); ++ti) {
    const TableSpec& table = dataset_.tables[ti];
    if (table.tuples == 0) continue;
    const ValueProfile& profile = profiles[ti];
    FragmentId next_index = 0;

    auto emit = [&](TupleIndex a, TupleIndex b, bool hot) {
      // Split oversized pieces so each fits the block/disk limit.
      while (a < b) {
        const TupleIndex e = std::min<TupleIndex>(b, a + max_frag);
        PlannedFragment pf;
        pf.info.table = table.id;
        pf.info.index_in_table = next_index++;
        pf.info.range = TupleRange{a, e};
        pf.info.value = profile.TotalValue(pf.info.range);
        pf.info.replicas = 1;
        pf.hot = hot;
        planned.push_back(pf);
        a = e;
      }
    };

    // Walk value chunks, grouping into maximal hot/cold runs.
    TupleIndex run_start = 0;
    bool run_hot = false;
    bool first = true;
    std::size_t hot_count = 0;
    for (const ValueChunk& c : profile.chunks()) {
      const bool hot =
          mean_freq > 0.0 && c.value > hot_cutoff &&
          hot_count < options_.max_hot_frags;
      if (first) {
        run_start = c.start;
        run_hot = hot;
        first = false;
      } else if (hot != run_hot) {
        emit(run_start, c.start, run_hot);
        if (run_hot) ++hot_count;
        run_start = c.start;
        run_hot = hot;
      }
    }
    if (!first) emit(run_start, table.tuples, run_hot);
  }

  ReplicationParams params;
  params.node_cost = options_.node_cost;
  params.node_disk = options_.node_disk;
  params.window_scans = freq_estimator_->window_scans();
  params.min_replicas = 1;

  // Placement ("Greedy extended"): fragments in decreasing frequency-mass
  // order, each base copy onto the least-loaded node with room.
  const std::size_t n_nodes = options_.num_nodes;
  std::vector<std::vector<FlatFragmentId>> node_frags(n_nodes);
  std::vector<TupleCount> node_used(n_nodes, 0);
  std::vector<Money> node_load(n_nodes, 0.0);

  std::vector<std::size_t> order(planned.size());
  std::iota(order.begin(), order.end(), 0);
  std::sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) {
    return planned[a].info.value > planned[b].info.value;
  });

  auto least_loaded_with_room = [&](TupleCount size,
                                    const std::vector<bool>& holds)
      -> std::size_t {
    std::size_t best = n_nodes;
    for (std::size_t m = 0; m < n_nodes; ++m) {
      if (holds[m] || node_used[m] + size > options_.node_disk) continue;
      // Least frequency-load first; break ties (e.g. among cold blocks,
      // which carry ~zero load) toward the emptiest disk so cold data
      // spreads across the whole cluster as E-Store does.
      if (best == n_nodes || node_load[m] < node_load[best] ||
          (node_load[m] == node_load[best] &&
           node_used[m] < node_used[best])) {
        best = m;
      }
    }
    return best;
  };

  std::vector<std::vector<bool>> holds(
      planned.size(), std::vector<bool>(n_nodes, false));
  std::vector<std::size_t> replica_count(planned.size(), 0);

  for (std::size_t idx : order) {
    const PlannedFragment& pf = planned[idx];
    const std::size_t m = least_loaded_with_room(pf.info.size(), holds[idx]);
    NASHDB_CHECK_LT(m, n_nodes)
        << "Threshold cluster too small: " << n_nodes << " nodes of "
        << options_.node_disk << " tuples cannot hold the database";
    node_frags[m].push_back(static_cast<FlatFragmentId>(idx));
    node_used[m] += pf.info.size();
    node_load[m] += pf.info.value;
    holds[idx][m] = true;
    replica_count[idx] = 1;
  }

  // Replication: hot fragments gain replicas in linear proportion to
  // access frequency, scaled so the fixed cluster's spare space is used.
  // Replica targets are computed in one pass (proportional shares of the
  // spare volume); placement stays greedy least-loaded.
  TupleCount spare = 0;
  for (std::size_t m = 0; m < n_nodes; ++m) {
    spare += options_.node_disk - node_used[m];
  }
  Money hot_value = 0.0;
  for (const PlannedFragment& pf : planned) {
    if (pf.hot) hot_value += pf.info.value;
  }
  if (hot_value > 0.0 && spare > 0) {
    // Hottest first so they win any contention for the last slots.
    for (std::size_t idx : order) {
      const PlannedFragment& pf = planned[idx];
      if (!pf.hot || pf.info.size() == 0) continue;
      const double share =
          static_cast<double>(spare) * (pf.info.value / hot_value);
      std::size_t extra = static_cast<std::size_t>(
          share / static_cast<double>(pf.info.size()));
      extra = std::min<std::size_t>(extra, n_nodes - replica_count[idx]);
      for (std::size_t r = 0; r < extra; ++r) {
        const std::size_t m =
            least_loaded_with_room(pf.info.size(), holds[idx]);
        if (m == n_nodes) break;
        node_frags[m].push_back(static_cast<FlatFragmentId>(idx));
        node_used[m] += pf.info.size();
        node_load[m] += pf.info.value /
                        static_cast<Money>(replica_count[idx] + 1);
        holds[idx][m] = true;
        ++replica_count[idx];
      }
    }
  }

  std::vector<FragmentInfo> fragments;
  fragments.reserve(planned.size());
  for (const PlannedFragment& pf : planned) fragments.push_back(pf.info);

  if (last_config_.has_value()) {
    // Keep this round's replica targets but place them incrementally
    // against the previous configuration to avoid placement churn.
    for (std::size_t i = 0; i < fragments.size(); ++i) {
      fragments[i].replicas = replica_count[i];
    }
    IncrementalOptions inc;
    inc.max_nodes = n_nodes;
    Result<ClusterConfig> config =
        RepackIncremental(params, std::move(fragments), &*last_config_, inc);
    NASHDB_CHECK(config.ok()) << config.status().ToString();
    last_config_ = *config;
    return std::move(config).value();
  }

  Result<ClusterConfig> config =
      BuildConfigFromPlacement(params, std::move(fragments), node_frags);
  NASHDB_CHECK(config.ok()) << config.status().ToString();
  last_config_ = *config;
  return std::move(config).value();
}

void ThresholdSystem::Reset() {
  freq_estimator_ =
      std::make_unique<TupleValueEstimator>(options_.window_scans);
  last_config_.reset();
}

}  // namespace nashdb
