#ifndef NASHDB_BASELINES_MARKET_SIM_H_
#define NASHDB_BASELINES_MARKET_SIM_H_

#include <cstdint>
#include <vector>

#include "replication/replication.h"

namespace nashdb {

/// Outcome of an iterative replica-market simulation.
struct MarketSimResult {
  /// Final replica counts (in FragmentInfo::replicas).
  std::vector<FragmentInfo> fragments;
  /// Full passes over the market until quiescence (or the round cap).
  std::size_t rounds = 0;
  /// Individual add/drop decisions executed.
  std::size_t moves = 0;
  /// True if a full round produced no moves (a Nash equilibrium).
  bool converged = false;
};

/// Mariposa-style market simulation ([41], §9): instead of computing the
/// equilibrium replica counts directly (Eq. 9), firms iteratively take
/// better-response actions — an entrant stocks a replica whose marginal
/// profit is positive, an incumbent drops a replica whose profit is
/// negative — in randomized order until no profitable move remains.
///
/// The fixed point is exactly the Eq. 9 allocation (modulo ties at zero
/// marginal profit), but reaching it costs many rounds; this function
/// exists to quantify the paper's core claim that NashDB's direct
/// computation avoids that overhead (see bench_ablation_market).
///
/// Initial replica counts are taken from the input fragments (commonly 0
/// or 1). min_replicas in `params` is respected as a drop floor.
MarketSimResult SimulateReplicaMarket(const ReplicationParams& params,
                                      std::vector<FragmentInfo> fragments,
                                      std::uint64_t seed,
                                      std::size_t max_rounds = 100000);

}  // namespace nashdb

#endif  // NASHDB_BASELINES_MARKET_SIM_H_
