#ifndef NASHDB_BASELINES_HYPERGRAPH_SYSTEM_H_
#define NASHDB_BASELINES_HYPERGRAPH_SYSTEM_H_

#include <memory>
#include <optional>

#include "engine/system.h"
#include "fragment/fragmenter.h"
#include "value/estimator.h"
#include "workload/workload.h"

namespace nashdb {

/// Options for the SWORD-style hypergraph baseline (paper §10.1/§10.3,
/// "Hypergraph"). The tuning knob is `num_partitions`: the database is cut
/// into that many min-span partitions, one per node, so partitions ==
/// cluster size (more partitions -> more cost, lower latency).
struct HypergraphSystemOptions {
  std::size_t window_scans = 50;
  /// The sweep parameter of Figures 7/8 (also the node count).
  std::size_t num_partitions = 8;
  TupleCount node_disk = 2'000'000;
  Money node_cost = 10.0;
  /// Imbalance tolerance of the partitioner (hMETIS-style).
  double max_imbalance = 0.10;
};

/// SWORD-like baseline: tuples and window scans form a hypergraph; each
/// table is cut into partitions minimizing the scans broken across cuts
/// (exactly solved per table by the HypergraphFragmenter DP); partition i
/// maps to node i. Leftover disk space is filled with replicas chosen to
/// further reduce broken edges ("Improved LMBR" of [24]): scans spanning
/// several nodes are consolidated by copying their missing fragments onto
/// one of the nodes they already touch, highest-weight scans first.
/// Replication here exists only to cut communication, not to absorb load —
/// the design difference the paper's §9 highlights.
class HypergraphSystem : public DistributionSystem {
 public:
  HypergraphSystem(Dataset dataset, const HypergraphSystemOptions& options);

  std::string_view name() const override { return "Hypergraph"; }
  void Observe(const Query& query) override;
  ClusterConfig BuildConfig() override;
  void Reset() override;

 private:
  Dataset dataset_;
  HypergraphSystemOptions options_;
  std::unique_ptr<TupleValueEstimator> freq_estimator_;
  /// Previous configuration; later builds keep their own replica targets
  /// but are placed incrementally against it so the Figure 9b transfer
  /// measurement reflects genuine scheme changes, not placement churn.
  std::optional<ClusterConfig> last_config_;
};

}  // namespace nashdb

#endif  // NASHDB_BASELINES_HYPERGRAPH_SYSTEM_H_
