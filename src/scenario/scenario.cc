#include "scenario/scenario.h"

#include <algorithm>
#include <cctype>
#include <cmath>
#include <cstdio>
#include <fstream>
#include <memory>
#include <sstream>
#include <utility>

#if defined(__unix__) || defined(__APPLE__)
#include <sys/resource.h>
#endif

#include "cluster/faults.h"
#include "common/logging.h"
#include "engine/nashdb_system.h"
#include "routing/router.h"

namespace nashdb {
namespace {

std::string_view Trim(std::string_view s) {
  while (!s.empty() && std::isspace(static_cast<unsigned char>(s.front()))) {
    s.remove_prefix(1);
  }
  while (!s.empty() && std::isspace(static_cast<unsigned char>(s.back()))) {
    s.remove_suffix(1);
  }
  return s;
}

/// Parse-error factory: every error names the line, the offending token,
/// and what the grammar expected there, so a failing spec is fixable from
/// the message alone (the CLI exits 2 with it).
Status BadLine(std::size_t line, std::string_view token,
               std::string_view expected) {
  std::ostringstream os;
  os << "scenario line " << line << ": bad token '" << token
     << "': expected " << expected;
  return Status::InvalidArgument(os.str());
}

bool ParseDouble(std::string_view v, double* out) {
  char* end = nullptr;
  const std::string s(v);
  const double x = std::strtod(s.c_str(), &end);
  if (end == s.c_str() || *end != '\0' || !std::isfinite(x)) return false;
  *out = x;
  return true;
}

bool ParseUint(std::string_view v, std::uint64_t* out) {
  if (v.empty() || v.front() == '-') return false;
  char* end = nullptr;
  const std::string s(v);
  const std::uint64_t x = std::strtoull(s.c_str(), &end, 10);
  if (end == s.c_str() || *end != '\0') return false;
  *out = x;
  return true;
}

bool ParseBool(std::string_view v, bool* out) {
  if (v == "true" || v == "1") return *out = true, true;
  if (v == "false" || v == "0") return *out = false, true;
  return false;
}

constexpr std::string_view kSections =
    "[scenario], [topology], [workload], [phase], [faults], [overload], "
    "[driver], or [assert]";

constexpr std::string_view kAssertKeys =
    "max_abort_rate, max_shed_rate, max_retry_rate, mean_latency_s, "
    "p50_latency_s, p95_latency_s, p99_latency_s, recovery_time_s, "
    "min_completed, min_cost_cents, max_cost_cents, or max_rss_mb";

bool KnownAssertKey(std::string_view key) {
  static constexpr std::string_view kKeys[] = {
      "max_abort_rate", "max_shed_rate",  "max_retry_rate",
      "mean_latency_s", "p50_latency_s",  "p95_latency_s",
      "p99_latency_s",  "recovery_time_s", "min_completed",
      "min_cost_cents", "max_cost_cents", "max_rss_mb",
  };
  for (std::string_view k : kKeys) {
    if (k == key) return true;
  }
  return false;
}

/// Typed key dispatch for one `key = value` line; returns false when the
/// key is not recognized in the current section (the caller reports it).
struct LineContext {
  std::size_t line;
  std::string_view key;
  std::string_view value;
};

Status BadValue(const LineContext& c, std::string_view expected) {
  return BadLine(c.line, c.value, expected);
}

#define NASHDB_SCN_DOUBLE(field)                               \
  do {                                                         \
    if (!ParseDouble(c.value, &(field)))                       \
      return BadValue(c, "a number for key '" +                \
                             std::string(c.key) + "'");        \
    return Status::OK();                                       \
  } while (false)

#define NASHDB_SCN_UINT(field)                                 \
  do {                                                         \
    std::uint64_t u = 0;                                       \
    if (!ParseUint(c.value, &u))                               \
      return BadValue(c, "a nonnegative integer for key '" +   \
                             std::string(c.key) + "'");        \
    (field) = u;                                               \
    return Status::OK();                                       \
  } while (false)

#define NASHDB_SCN_BOOL(field)                                 \
  do {                                                         \
    if (!ParseBool(c.value, &(field)))                         \
      return BadValue(c, "true or false for key '" +           \
                             std::string(c.key) + "'");        \
    return Status::OK();                                       \
  } while (false)

Status ApplyScenarioKey(const LineContext& c, ScenarioSpec* spec) {
  if (c.key == "name") return spec->name = std::string(c.value), Status::OK();
  if (c.key == "description") {
    return spec->description = std::string(c.value), Status::OK();
  }
  if (c.key == "seed") NASHDB_SCN_UINT(spec->seed);
  return BadLine(c.line, c.key, "[scenario] key: name, description, or seed");
}

Status ApplyTopologyKey(const LineContext& c, ScenarioSpec* spec) {
  if (c.key == "racks") NASHDB_SCN_UINT(spec->racks);
  return BadLine(c.line, c.key, "[topology] key: racks");
}

Status ApplyWorkloadKey(const LineContext& c, ScenarioSpec* spec) {
  PhasedStreamOptions& w = spec->workload;
  if (c.key == "queries") NASHDB_SCN_UINT(w.num_queries);
  if (c.key == "db_gb") NASHDB_SCN_DOUBLE(w.db_gb);
  if (c.key == "tuples_per_gb") NASHDB_SCN_UINT(w.tuples_per_gb);
  if (c.key == "price") NASHDB_SCN_DOUBLE(w.price);
  if (c.key == "duration_s") NASHDB_SCN_DOUBLE(w.duration_s);
  if (c.key == "hot_prob") NASHDB_SCN_DOUBLE(w.hot_prob);
  if (c.key == "hot_frac") NASHDB_SCN_DOUBLE(w.hot_frac);
  if (c.key == "hot_center") NASHDB_SCN_DOUBLE(w.hot_center);
  if (c.key == "scan_frac") NASHDB_SCN_DOUBLE(w.scan_frac);
  if (c.key == "stream_seed") NASHDB_SCN_UINT(w.seed);
  return BadLine(c.line, c.key,
                 "[workload] key: queries, db_gb, tuples_per_gb, price, "
                 "duration_s, hot_prob, hot_frac, hot_center, scan_frac, "
                 "or stream_seed");
}

Status ApplyPhaseKey(const LineContext& c, StreamPhase* p) {
  if (c.key == "start_s") NASHDB_SCN_DOUBLE(p->start_s);
  if (c.key == "end_s") NASHDB_SCN_DOUBLE(p->end_s);
  if (c.key == "period_s") NASHDB_SCN_DOUBLE(p->period_s);
  if (c.key == "amplitude") NASHDB_SCN_DOUBLE(p->amplitude);
  if (c.key == "rate_x") NASHDB_SCN_DOUBLE(p->rate_x);
  if (c.key == "focus_lo") NASHDB_SCN_DOUBLE(p->focus_lo);
  if (c.key == "focus_hi") NASHDB_SCN_DOUBLE(p->focus_hi);
  if (c.key == "focus_prob") NASHDB_SCN_DOUBLE(p->focus_prob);
  if (c.key == "drift_to") NASHDB_SCN_DOUBLE(p->drift_to);
  if (c.key == "price_x") NASHDB_SCN_DOUBLE(p->price_x);
  if (c.key == "tenant_frac") NASHDB_SCN_DOUBLE(p->tenant_frac);
  return BadLine(c.line, c.key,
                 "[phase] key: start_s, end_s, period_s, amplitude, "
                 "rate_x, focus_lo, focus_hi, focus_prob, drift_to, "
                 "price_x, or tenant_frac");
}

Status ApplyFaultsKey(const LineContext& c, ScenarioSpec* spec) {
  FaultOptions& f = spec->fault_options;
  if (c.key == "spec") {
    return spec->faults = std::string(c.value), Status::OK();
  }
  if (c.key == "no_repair") {
    bool no_repair = false;
    if (!ParseBool(c.value, &no_repair)) {
      return BadValue(c, "true or false for key 'no_repair'");
    }
    f.emergency_repair = !no_repair;
    return Status::OK();
  }
  if (c.key == "max_scan_retries") NASHDB_SCN_UINT(f.max_scan_retries);
  if (c.key == "retry_backoff_s") NASHDB_SCN_DOUBLE(f.retry_backoff_s);
  if (c.key == "retry_backoff_cap_s") {
    NASHDB_SCN_DOUBLE(f.retry_backoff_cap_s);
  }
  if (c.key == "query_timeout_s") NASHDB_SCN_DOUBLE(f.query_timeout_s);
  if (c.key == "query_retry_budget") NASHDB_SCN_UINT(f.query_retry_budget);
  return BadLine(c.line, c.key,
                 "[faults] key: spec, no_repair, max_scan_retries, "
                 "retry_backoff_s, retry_backoff_cap_s, query_timeout_s, "
                 "or query_retry_budget");
}

Status ApplyOverloadKey(const LineContext& c, ScenarioSpec* spec) {
  OverloadOptions& o = spec->overload;
  if (c.key == "max_pending") NASHDB_SCN_UINT(o.max_pending_queries);
  if (c.key == "shed_keep_price") NASHDB_SCN_DOUBLE(o.shed_keep_price);
  if (c.key == "hard_cap_factor") NASHDB_SCN_DOUBLE(o.hard_cap_factor);
  return BadLine(c.line, c.key,
                 "[overload] key: max_pending, shed_keep_price, or "
                 "hard_cap_factor");
}

Status ApplyDriverKey(const LineContext& c, ScenarioSpec* spec) {
  if (c.key == "interval_s") NASHDB_SCN_DOUBLE(spec->interval_s);
  if (c.key == "window") NASHDB_SCN_UINT(spec->window);
  if (c.key == "node_cost") NASHDB_SCN_DOUBLE(spec->node_cost);
  if (c.key == "node_disk") NASHDB_SCN_UINT(spec->node_disk);
  if (c.key == "block") NASHDB_SCN_UINT(spec->block);
  if (c.key == "max_replicas") NASHDB_SCN_UINT(spec->max_replicas);
  if (c.key == "prewarm_scans") NASHDB_SCN_UINT(spec->prewarm_scans);
  if (c.key == "keep_records") NASHDB_SCN_BOOL(spec->keep_records);
  if (c.key == "adaptive") NASHDB_SCN_BOOL(spec->adaptive);
  if (c.key == "reconfig_threads") NASHDB_SCN_UINT(spec->reconfig_threads);
  if (c.key == "tuples_per_second") NASHDB_SCN_DOUBLE(spec->tuples_per_second);
  if (c.key == "transfer_tuples_per_second") {
    NASHDB_SCN_DOUBLE(spec->transfer_tuples_per_second);
  }
  if (c.key == "router") {
    const std::string r(c.value);
    if (r != "maxofmins" && r != "shortestqueue" && r != "greedysc" &&
        r != "power2") {
      return BadValue(c,
                      "router maxofmins, shortestqueue, greedysc, or power2");
    }
    spec->router = r;
    return Status::OK();
  }
  return BadLine(c.line, c.key,
                 "[driver] key: interval_s, window, node_cost, node_disk, "
                 "block, max_replicas, prewarm_scans, keep_records, "
                 "adaptive, reconfig_threads, tuples_per_second, "
                 "transfer_tuples_per_second, or router");
}

Status ApplyAssertKey(const LineContext& c, ScenarioSpec* spec) {
  if (!KnownAssertKey(c.key)) {
    return BadLine(c.line, c.key,
                   std::string("[assert] key: ") + std::string(kAssertKeys));
  }
  ScenarioAssertion a;
  a.key = std::string(c.key);
  if (!ParseDouble(c.value, &a.value)) {
    return BadValue(c, "a number for assertion '" + a.key + "'");
  }
  spec->assertions.push_back(std::move(a));
  return Status::OK();
}

#undef NASHDB_SCN_DOUBLE
#undef NASHDB_SCN_UINT
#undef NASHDB_SCN_BOOL

std::string JsonEscape(std::string_view s) {
  std::string out;
  out.reserve(s.size());
  for (char ch : s) {
    if (ch == '"' || ch == '\\') {
      out.push_back('\\');
      out.push_back(ch);
    } else if (ch == '\n') {
      out += "\\n";
    } else {
      out.push_back(ch);
    }
  }
  return out;
}

std::string Num(double x) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.6g", x);
  return buf;
}

}  // namespace

Result<ScenarioSpec> ScenarioSpec::Parse(std::string_view text) {
  ScenarioSpec spec;
  enum class Section {
    kNone, kScenario, kTopology, kWorkload, kPhase, kFaults, kOverload,
    kDriver, kAssert,
  };
  Section section = Section::kNone;
  StreamPhase* phase = nullptr;   // open [phase] being filled
  bool phase_has_kind = false;

  std::size_t line_no = 0;
  std::size_t pos = 0;
  while (pos <= text.size()) {
    const std::size_t eol = std::min(text.find('\n', pos), text.size());
    std::string_view line = Trim(text.substr(pos, eol - pos));
    pos = eol + 1;
    ++line_no;
    // Whole-line comments only: fault specs and descriptions may contain
    // '#' mid-value, so only a leading '#' comments.
    if (line.empty() || line.front() == '#') continue;

    if (line.front() == '[') {
      if (line.back() != ']') {
        return BadLine(line_no, line, "a section header like [workload]");
      }
      const std::string_view name = Trim(line.substr(1, line.size() - 2));
      if (name == "scenario") section = Section::kScenario;
      else if (name == "topology") section = Section::kTopology;
      else if (name == "workload") section = Section::kWorkload;
      else if (name == "phase") section = Section::kPhase;
      else if (name == "faults") section = Section::kFaults;
      else if (name == "overload") section = Section::kOverload;
      else if (name == "driver") section = Section::kDriver;
      else if (name == "assert") section = Section::kAssert;
      else return BadLine(line_no, line, std::string(kSections));
      if (section == Section::kPhase) {
        spec.workload.phases.emplace_back();
        phase = &spec.workload.phases.back();
        phase_has_kind = false;
      } else {
        phase = nullptr;
      }
      continue;
    }

    const std::size_t eq = line.find('=');
    if (eq == std::string_view::npos) {
      return BadLine(line_no, line, "a 'key = value' line or [section]");
    }
    const LineContext c{line_no, Trim(line.substr(0, eq)),
                        Trim(line.substr(eq + 1))};
    if (c.key.empty()) {
      return BadLine(line_no, line, "a nonempty key before '='");
    }

    Status st;
    switch (section) {
      case Section::kNone:
        return BadLine(line_no, c.key,
                       std::string("a section header before any key: ") +
                           std::string(kSections));
      case Section::kScenario: st = ApplyScenarioKey(c, &spec); break;
      case Section::kTopology: st = ApplyTopologyKey(c, &spec); break;
      case Section::kWorkload: st = ApplyWorkloadKey(c, &spec); break;
      case Section::kPhase: {
        if (c.key == "kind") {
          if (c.value == "diurnal") phase->kind = StreamPhase::Kind::kDiurnal;
          else if (c.value == "flash_crowd") {
            phase->kind = StreamPhase::Kind::kFlashCrowd;
          } else if (c.value == "skew_drift") {
            phase->kind = StreamPhase::Kind::kSkewDrift;
          } else if (c.value == "price_war") {
            phase->kind = StreamPhase::Kind::kPriceWar;
          } else {
            return BadValue(
                c, "phase kind diurnal, flash_crowd, skew_drift, or "
                   "price_war");
          }
          phase_has_kind = true;
          st = Status::OK();
        } else if (!phase_has_kind) {
          // Requiring kind first keeps the grammar unambiguous: every
          // later key is interpreted under a known phase kind.
          return BadLine(line_no, c.key,
                         "'kind = ...' as the first key of a [phase]");
        } else {
          st = ApplyPhaseKey(c, phase);
        }
        break;
      }
      case Section::kFaults: st = ApplyFaultsKey(c, &spec); break;
      case Section::kOverload: st = ApplyOverloadKey(c, &spec); break;
      case Section::kDriver: st = ApplyDriverKey(c, &spec); break;
      case Section::kAssert: st = ApplyAssertKey(c, &spec); break;
    }
    NASHDB_RETURN_IF_ERROR(st);
    if (pos > text.size()) break;
  }

  if (!spec.workload.phases.empty() && section == Section::kPhase &&
      !phase_has_kind) {
    return Status::InvalidArgument(
        "scenario: [phase] section without a 'kind = ...' line");
  }

  // Fold the topology into the fault grammar: a declared rack count is
  // what r-scoped fault targets resolve against.
  std::string fault_text = spec.faults;
  if (spec.racks > 0 &&
      fault_text.find("racks=") == std::string::npos) {
    fault_text = "racks=" + std::to_string(spec.racks) +
                 (fault_text.empty() ? "" : ";" + fault_text);
  }
  if (!fault_text.empty()) {
    Result<FaultSpec> parsed = FaultSpec::Parse(fault_text);
    if (!parsed.ok()) {
      return Status::InvalidArgument("scenario [faults] spec: " +
                                     parsed.status().message());
    }
    spec.fault_options.spec = std::move(*parsed);
  }
  if (spec.workload.num_queries == 0) {
    return Status::InvalidArgument(
        "scenario [workload]: queries must be > 0");
  }
  if (spec.workload.duration_s <= 0.0) {
    return Status::InvalidArgument(
        "scenario [workload]: duration_s must be > 0");
  }
  return spec;
}

Result<ScenarioSpec> ScenarioSpec::Load(const std::string& path) {
  std::ifstream in(path);
  if (!in) {
    return Status::NotFound("cannot read scenario file: " + path);
  }
  std::ostringstream buf;
  buf << in.rdbuf();
  Result<ScenarioSpec> spec = Parse(buf.str());
  if (!spec.ok()) {
    return Status(spec.status().code(),
                  path + ": " + spec.status().message());
  }
  return spec;
}

std::vector<std::string> EvaluateAssertions(const ScenarioSpec& spec,
                                            const RunResult& result,
                                            double rss_peak_mb) {
  std::vector<std::string> violations;
  const double total =
      std::max<double>(1.0, static_cast<double>(result.total_queries));
  const SimTime recovery =
      result.last_fault_time_s < 0.0
          ? 0.0
          : std::max(0.0, result.last_disruption_time_s -
                              result.last_fault_time_s);
  for (const ScenarioAssertion& a : spec.assertions) {
    double measured = 0.0;
    bool is_min = false;  // min_* asserts measured >= bound
    if (a.key == "max_abort_rate") {
      measured = static_cast<double>(result.aborted_queries) / total;
    } else if (a.key == "max_shed_rate") {
      measured = static_cast<double>(result.shed_queries) / total;
    } else if (a.key == "max_retry_rate") {
      measured = static_cast<double>(result.scan_retries) / total;
    } else if (a.key == "mean_latency_s") {
      measured = result.MeanLatency();
    } else if (a.key == "p50_latency_s") {
      measured = result.TailLatency(50);
    } else if (a.key == "p95_latency_s") {
      measured = result.TailLatency(95);
    } else if (a.key == "p99_latency_s") {
      measured = result.TailLatency(99);
    } else if (a.key == "recovery_time_s") {
      measured = recovery;
    } else if (a.key == "min_completed") {
      measured = static_cast<double>(result.CompletedQueries());
      is_min = true;
    } else if (a.key == "min_cost_cents") {
      measured = result.total_cost;
      is_min = true;
    } else if (a.key == "max_cost_cents") {
      measured = result.total_cost;
    } else if (a.key == "max_rss_mb") {
      measured = rss_peak_mb;
    } else {
      NASHDB_CHECK(false) << "unvalidated assertion key " << a.key;
    }
    const bool ok = is_min ? measured >= a.value : measured <= a.value;
    if (!ok) {
      violations.push_back(a.key + ": " + Num(measured) +
                           (is_min ? " < " : " > ") + Num(a.value));
    }
  }
  return violations;
}

namespace {

std::unique_ptr<ScanRouter> BuildScenarioRouter(const ScenarioSpec& spec) {
  if (spec.router == "shortestqueue") {
    return std::make_unique<ShortestQueueRouter>();
  }
  if (spec.router == "greedysc") return std::make_unique<GreedyScRouter>();
  if (spec.router == "power2") {
    return spec.seed == 0 ? std::make_unique<PowerOfTwoRouter>()
                          : std::make_unique<PowerOfTwoRouter>(spec.seed);
  }
  return std::make_unique<MaxOfMinsRouter>();
}

double PeakRssMb() {
#if defined(__unix__) || defined(__APPLE__)
  struct rusage ru;
  if (getrusage(RUSAGE_SELF, &ru) != 0) return 0.0;
#if defined(__APPLE__)
  return static_cast<double>(ru.ru_maxrss) / (1024.0 * 1024.0);  // bytes
#else
  return static_cast<double>(ru.ru_maxrss) / 1024.0;  // kilobytes
#endif
#else
  return 0.0;
#endif
}

std::string BuildReportJson(const ScenarioSpec& spec,
                            const ScenarioOutcome& out) {
  const RunResult& r = out.result;
  std::ostringstream os;
  os << "{\n";
  os << "  \"scenario\": \"" << JsonEscape(spec.name) << "\",\n";
  os << "  \"seed\": " << spec.seed << ",\n";
  os << "  \"total_queries\": " << r.total_queries << ",\n";
  os << "  \"completed_queries\": " << r.CompletedQueries() << ",\n";
  os << "  \"aborted_queries\": " << r.aborted_queries << ",\n";
  os << "  \"shed_queries\": " << r.shed_queries << ",\n";
  os << "  \"scan_retries\": " << r.scan_retries << ",\n";
  os << "  \"crashes\": " << r.crashes << ",\n";
  os << "  \"partitions\": " << r.partitions << ",\n";
  os << "  \"emergency_repairs\": " << r.emergency_repairs << ",\n";
  os << "  \"transitions\": " << r.transitions << ",\n";
  os << "  \"mean_latency_s\": " << Num(r.MeanLatency()) << ",\n";
  os << "  \"p50_latency_s\": " << Num(r.TailLatency(50)) << ",\n";
  os << "  \"p95_latency_s\": " << Num(r.TailLatency(95)) << ",\n";
  os << "  \"p99_latency_s\": " << Num(r.TailLatency(99)) << ",\n";
  os << "  \"total_cost_cents\": " << Num(r.total_cost) << ",\n";
  os << "  \"final_nodes\": " << r.final_nodes << ",\n";
  os << "  \"makespan_s\": " << Num(r.makespan_s) << ",\n";
  os << "  \"last_fault_time_s\": " << Num(r.last_fault_time_s) << ",\n";
  os << "  \"last_disruption_time_s\": " << Num(r.last_disruption_time_s)
     << ",\n";
  os << "  \"recovery_time_s\": " << Num(out.recovery_time_s) << ",\n";
  os << "  \"rss_peak_mb\": " << Num(out.rss_peak_mb) << ",\n";
  os << "  \"violations\": [";
  for (std::size_t i = 0; i < out.violations.size(); ++i) {
    os << (i ? ", " : "") << "\"" << JsonEscape(out.violations[i]) << "\"";
  }
  os << "],\n";
  os << "  \"assertions\": " << spec.assertions.size() << ",\n";
  os << "  \"passed\": " << (out.violations.empty() ? "true" : "false")
     << "\n";
  os << "}\n";
  return os.str();
}

}  // namespace

ScenarioOutcome RunScenario(const ScenarioSpec& spec) {
  PhasedQueryStream stream(spec.workload);

  NashDbOptions no;
  no.window_scans = spec.window;
  no.block_tuples = spec.block;
  no.node_cost = spec.node_cost;
  no.node_disk = spec.node_disk;
  no.max_replicas = spec.max_replicas;
  no.reconfig_threads = spec.reconfig_threads;
  NashDbSystem system(stream.dataset(), no);

  std::unique_ptr<ScanRouter> router = BuildScenarioRouter(spec);

  DriverOptions d;
  d.sim.tuples_per_second = spec.tuples_per_second;
  d.sim.transfer_tuples_per_second = spec.transfer_tuples_per_second;
  d.sim.node_cost_per_hour = 1.0;
  d.reconfigure_interval_s = spec.interval_s;
  d.adaptive_reconfigure = spec.adaptive;
  d.prewarm_scans = spec.prewarm_scans;
  d.keep_records = spec.keep_records;
  d.overload = spec.overload;
  d.faults = spec.fault_options;
  d.faults.seed = spec.seed;

  ScenarioOutcome out;
  out.result = RunQueryStream(&stream, &system, router.get(), d);
  out.recovery_time_s =
      out.result.last_fault_time_s < 0.0
          ? 0.0
          : std::max(0.0, out.result.last_disruption_time_s -
                              out.result.last_fault_time_s);
  out.rss_peak_mb = PeakRssMb();
  out.violations = EvaluateAssertions(spec, out.result, out.rss_peak_mb);
  out.report_json = BuildReportJson(spec, out);
  return out;
}

}  // namespace nashdb
