#ifndef NASHDB_SCENARIO_SCENARIO_H_
#define NASHDB_SCENARIO_SCENARIO_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "common/status.h"
#include "common/types.h"
#include "engine/driver.h"
#include "workload/streaming.h"

namespace nashdb {

/// One acceptance assertion of a scenario ([assert] section): a named SLO
/// bound checked against the run's outcome. `key` is one of the
/// documented assertion keys (see ScenarioSpec::Parse); min_* / max_*
/// spelling decides the comparison direction.
struct ScenarioAssertion {
  std::string key;
  double value = 0.0;
};

/// A declarative chaos scenario (DESIGN.md §13): topology + phased
/// workload + fault program + overload policy + driver knobs + acceptance
/// assertions, parsed from a flat INI-subset text file and compiled into
/// one deterministic end-to-end run.
///
/// File grammar — `#` comments, blank lines ignored, `[section]` headers,
/// `key = value` lines (whitespace-trimmed):
///
///   [scenario]   name = STR          seed = N     description = STR
///   [topology]   racks = N           (prepended to the fault spec as a
///                                     racks=N clause when absent there)
///   [workload]   queries = N         db_gb = F    tuples_per_gb = N
///                price = F           duration_s = F
///                hot_prob = F        hot_frac = F hot_center = F
///                scan_frac = F       stream_seed = N
///   [phase]      kind = diurnal|flash_crowd|skew_drift|price_war
///                (must be the first key of the section), then
///                start_s / end_s plus the kind's knobs — period_s,
///                amplitude, rate_x, focus_lo, focus_hi, focus_prob,
///                drift_to, price_x, tenant_frac (StreamPhase).
///                Repeatable; phases compose.
///   [faults]     spec = STR          (the --faults clause grammar,
///                                     cluster/faults.h)
///                no_repair = BOOL    max_scan_retries = N
///                retry_backoff_s = F retry_backoff_cap_s = F
///                query_timeout_s = F query_retry_budget = N
///   [overload]   max_pending = N     shed_keep_price = F
///                hard_cap_factor = F (OverloadOptions)
///   [driver]     interval_s = F      window = N     node_cost = F
///                node_disk = N       block = N      max_replicas = N
///                prewarm_scans = N   keep_records = BOOL
///                adaptive = BOOL     reconfig_threads = N
///                tuples_per_second = F
///                transfer_tuples_per_second = F
///                router = maxofmins|shortestqueue|greedysc|power2
///   [assert]     KEY = F, one per line; KEYs:
///                max_abort_rate, max_shed_rate, max_retry_rate,
///                mean_latency_s, p50_latency_s, p95_latency_s,
///                p99_latency_s, recovery_time_s, min_completed,
///                min_cost_cents, max_cost_cents, max_rss_mb
///
/// Parse errors are InvalidArgument naming the line, the bad token, and
/// the expected grammar (the CLI exits 2 on them).
struct ScenarioSpec {
  std::string name = "unnamed";
  std::string description;
  /// Seeds the fault scheduler and the power2 router (the workload
  /// stream has its own stream_seed so fault and workload draws never
  /// alias).
  std::uint64_t seed = 0;

  /// Rack topology (0 = none declared). Folded into the fault spec.
  std::size_t racks = 0;

  PhasedStreamOptions workload;

  /// Raw fault clause string ("" = fault-free) and the compiled fault +
  /// retry options (spec parsed, racks folded in, seed applied by
  /// RunScenario).
  std::string faults;
  FaultOptions fault_options;

  OverloadOptions overload;

  // Driver + system knobs ([driver]).
  double interval_s = 3600.0;
  std::size_t window = 250;
  Money node_cost = 3.0;
  TupleCount node_disk = 120'000;
  TupleCount block = 4'000;
  std::size_t max_replicas = 128;
  std::size_t prewarm_scans = 250;
  bool keep_records = true;
  bool adaptive = false;
  std::size_t reconfig_threads = 1;
  /// Simulated node service / transfer rates (ClusterSimOptions).
  double tuples_per_second = 150.0;
  double transfer_tuples_per_second = 500.0;
  std::string router = "maxofmins";

  std::vector<ScenarioAssertion> assertions;

  /// Parses the grammar above from in-memory text.
  static Result<ScenarioSpec> Parse(std::string_view text);
  /// Reads `path` and parses it (NotFound on unreadable files).
  static Result<ScenarioSpec> Load(const std::string& path);
};

/// Outcome of one scenario run: the raw run result plus the derived SLO
/// inputs and the assertion verdicts.
struct ScenarioOutcome {
  RunResult result;
  /// Seconds the workload kept degrading (aborts/sheds/retries) after the
  /// last delivered fault: max(0, last_disruption_s - last_fault_s); 0
  /// for fault-free runs.
  SimTime recovery_time_s = 0.0;
  /// Peak resident set of the process (getrusage ru_maxrss), in MB; 0
  /// when the platform doesn't report it. Process-wide and monotonic, so
  /// it bounds the run's footprint from above.
  double rss_peak_mb = 0.0;
  /// One entry per violated assertion: "key: measured <op> bound".
  std::vector<std::string> violations;
  /// Per-scenario JSON report (name, seed, counts, latencies, cost,
  /// fault tallies, RSS, each assertion with measured value + verdict).
  std::string report_json;
};

/// Checks every [assert] entry of `spec` against `result`, returning one
/// human-readable string per violation (empty = all SLOs met). Split from
/// RunScenario so tests can drive it with hand-built results.
std::vector<std::string> EvaluateAssertions(const ScenarioSpec& spec,
                                            const RunResult& result,
                                            double rss_peak_mb);

/// Compiles `spec` into a system + router + streaming driver run,
/// executes it, and evaluates the assertions. Deterministic: identical
/// specs produce bit-identical QueryRecord streams and fault histories.
ScenarioOutcome RunScenario(const ScenarioSpec& spec);

}  // namespace nashdb

#endif  // NASHDB_SCENARIO_SCENARIO_H_
