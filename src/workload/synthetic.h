#ifndef NASHDB_WORKLOAD_SYNTHETIC_H_
#define NASHDB_WORKLOAD_SYNTHETIC_H_

#include <cstdint>

#include "common/types.h"
#include "workload/workload.h"

namespace nashdb {

/// The paper's "Bernoulli" workload (§10, Workloads): simple range queries
/// over the TPC-H fact table simulating time-series analysis — every scan
/// ends at the last tuple and starting points are drawn so that access
/// probability decays geometrically with distance from the end (the paper:
/// 100 * (19/20)^n percent of queries reach the nth-from-last GB).
struct BernoulliOptions {
  double db_gb = 1000.0;
  TupleCount tuples_per_gb = kDefaultTuplesPerGb;
  std::size_t num_queries = 500;
  Money price = 0.01;
  /// Per-GB continuation probability (19/20 in the paper).
  double continue_prob = 0.95;
  SimTime arrival_span_s = 0.0;
  std::uint64_t seed = 7;
};
Workload MakeBernoulliWorkload(const BernoulliOptions& options);

/// The paper's dynamic "Random" workload: aggregated range queries with
/// uniformly distributed start and end points over the TPC-H fact table,
/// spread over a 72-hour period.
struct RandomWorkloadOptions {
  double db_gb = 1000.0;
  TupleCount tuples_per_gb = kDefaultTuplesPerGb;
  std::size_t num_queries = 2000;
  Money price = 0.01;
  SimTime span_s = 72.0 * 3600.0;
  std::uint64_t seed = 11;
};
Workload MakeRandomWorkload(const RandomWorkloadOptions& options);

/// Synthetic stand-ins for the paper's proprietary corporate traces
/// ("Real data 1" / "Real data 2", Appendix F Table 1). The traces
/// themselves are unavailable; these generators are matched to every
/// published statistic (database size, query count, median/min bytes read)
/// and to the described workload character. See DESIGN.md §2.

/// Static "Real data 1": an 800 GB dashboard-refresh batch of 1000 queries
/// with median read 600 GB (dashboards recompute near-full-table
/// aggregates) drawn from a fixed set of dashboard templates with Zipf
/// popularity.
struct RealData1StaticOptions {
  double db_gb = 800.0;
  TupleCount tuples_per_gb = kDefaultTuplesPerGb;
  std::size_t num_queries = 1000;
  std::size_t num_templates = 40;
  Money price = 0.01;
  std::uint64_t seed = 13;
};
Workload MakeRealData1StaticWorkload(const RealData1StaticOptions& options);

/// Dynamic "Real data 1": 300 GB, 1220 descriptive-analytics queries over
/// 72 hours, median read 50 GB. Analysts examine a drifting hot region
/// (recent data moves forward through the clustered table) with diurnal
/// arrival intensity.
struct RealData1DynamicOptions {
  double db_gb = 300.0;
  TupleCount tuples_per_gb = kDefaultTuplesPerGb;
  std::size_t num_queries = 1220;
  Money price = 0.01;
  SimTime span_s = 72.0 * 3600.0;
  std::uint64_t seed = 17;
};
Workload MakeRealData1DynamicWorkload(const RealData1DynamicOptions& options);

/// Dynamic "Real data 2": 3 TB, 2500 predictive-analytics queries over 72
/// hours, median read 450 GB but minimum 80 KB — a bimodal mixture of
/// large model-training sweeps over favored feature regions and tiny
/// lookups, with the favored regions shifting every ~24 h.
struct RealData2DynamicOptions {
  double db_gb = 3000.0;
  TupleCount tuples_per_gb = kDefaultTuplesPerGb;
  std::size_t num_queries = 2500;
  Money price = 0.01;
  SimTime span_s = 72.0 * 3600.0;
  std::uint64_t seed = 19;
};
Workload MakeRealData2DynamicWorkload(const RealData2DynamicOptions& options);

}  // namespace nashdb

#endif  // NASHDB_WORKLOAD_SYNTHETIC_H_
