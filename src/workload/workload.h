#ifndef NASHDB_WORKLOAD_WORKLOAD_H_
#define NASHDB_WORKLOAD_WORKLOAD_H_

#include <string>
#include <vector>

#include "common/query.h"
#include "common/types.h"

namespace nashdb {

/// One table of the simulated database: NashDB only needs its cardinality
/// and clustered ordering, so a table is just a named tuple count.
struct TableSpec {
  TableId id = 0;
  std::string name;
  TupleCount tuples = 0;
};

/// The database schema the workload runs against.
struct Dataset {
  std::vector<TableSpec> tables;

  TupleCount TableSize(TableId id) const;
  TupleCount TotalTuples() const;
};

/// A query with its arrival time in the simulation.
struct TimedQuery {
  SimTime arrival = 0.0;
  Query query;
};

/// A fully materialized workload: schema plus a time-ordered query stream.
/// Static (batch) workloads have every arrival at time zero.
struct Workload {
  std::string name;
  Dataset dataset;
  std::vector<TimedQuery> queries;

  /// Total tuples read by all queries.
  TupleCount TotalTuplesRead() const;

  /// Ensures queries are sorted by arrival time.
  void SortByArrival();
};

/// Pull-based query source for streaming runs (DESIGN.md §13): queries
/// are produced on demand in nondecreasing arrival order, so a
/// 10⁷–10⁸-query scenario never materializes its workload.
/// Implementations are consumed serially (by the driver loop).
class QueryStream {
 public:
  virtual ~QueryStream() = default;
  /// Produces the next query; false at end of stream (`*out` untouched).
  virtual bool Next(TimedQuery* out) = 0;
};

/// Scales used across the synthetic workloads: `tuples_per_gb` maps the
/// paper's dataset sizes (expressed in GB/TB) onto simulated tuple counts.
/// The default models 1 GB as 10k tuples, so a "1 TB" TPC-H fact table is
/// ~10M simulated tuples — large enough to exercise every algorithm at its
/// real asymptotics while keeping benches fast (no per-tuple state exists
/// anywhere in NashDB; everything is range-based).
inline constexpr TupleCount kDefaultTuplesPerGb = 10'000;

}  // namespace nashdb

#endif  // NASHDB_WORKLOAD_WORKLOAD_H_
