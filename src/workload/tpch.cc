#include "workload/tpch.h"

#include <array>
#include <cmath>

#include "common/logging.h"
#include "common/random.h"

namespace nashdb {
namespace {

// Relative storage weight of each TPC-H table (fraction of total database
// bytes, approximated from the official cardinalities and row widths).
struct TableWeight {
  TpchTable table;
  const char* name;
  double weight;
};
constexpr std::array<TableWeight, 8> kTableWeights = {{
    {kLineitem, "lineitem", 0.70},
    {kOrders, "orders", 0.16},
    {kPartsupp, "partsupp", 0.08},
    {kPart, "part", 0.025},
    {kCustomer, "customer", 0.025},
    {kSupplier, "supplier", 0.008},
    {kNation, "nation", 0.001},
    {kRegion, "region", 0.001},
}};

// One table access of a template.
struct Access {
  TpchTable table;
  // Fraction of the table read. 1.0 = full scan.
  double fraction;
  // True if the scan is positioned by a date parameter (clustered fact
  // tables); false = scan anchored at offset 0 (dimension scans).
  bool date_positioned;
};

// Access patterns of the 22 TPC-H templates: which tables each query
// touches and how much of each it reads. Fractions approximate the
// templates' date/selectivity predicates on the date-clustered tables;
// dimension tables joined without clustered predicates are full scans
// (range scans fetch whole blocks regardless of later filtering — §2).
const std::vector<Access>& TemplateAccesses(int t) {
  static const std::vector<std::vector<Access>> kTemplates = {
      /*Q1*/ {{kLineitem, 0.97, true}},
      /*Q2*/
      {{kPart, 1.0, false},
       {kSupplier, 1.0, false},
       {kPartsupp, 1.0, false},
       {kNation, 1.0, false},
       {kRegion, 1.0, false}},
      /*Q3*/
      {{kCustomer, 1.0, false},
       {kOrders, 0.48, true},
       {kLineitem, 0.53, true}},
      /*Q4*/ {{kOrders, 0.035, true}, {kLineitem, 0.04, true}},
      /*Q5*/
      {{kCustomer, 1.0, false},
       {kOrders, 0.15, true},
       {kLineitem, 0.16, true},
       {kSupplier, 1.0, false},
       {kNation, 1.0, false},
       {kRegion, 1.0, false}},
      /*Q6*/ {{kLineitem, 0.15, true}},
      /*Q7*/
      {{kSupplier, 1.0, false},
       {kLineitem, 0.25, true},
       {kOrders, 0.50, true},
       {kCustomer, 1.0, false},
       {kNation, 1.0, false}},
      /*Q8*/
      {{kPart, 1.0, false},
       {kSupplier, 1.0, false},
       {kLineitem, 0.30, true},
       {kOrders, 0.30, true},
       {kCustomer, 1.0, false},
       {kNation, 1.0, false},
       {kRegion, 1.0, false}},
      /*Q9*/
      {{kPart, 1.0, false},
       {kSupplier, 1.0, false},
       {kLineitem, 0.55, true},
       {kPartsupp, 1.0, false},
       {kOrders, 0.55, true},
       {kNation, 1.0, false}},
      /*Q10*/
      {{kCustomer, 1.0, false},
       {kOrders, 0.035, true},
       {kLineitem, 0.04, true},
       {kNation, 1.0, false}},
      /*Q11*/
      {{kPartsupp, 1.0, false},
       {kSupplier, 1.0, false},
       {kNation, 1.0, false}},
      /*Q12*/ {{kOrders, 0.5, true}, {kLineitem, 0.15, true}},
      /*Q13*/ {{kCustomer, 1.0, false}, {kOrders, 0.7, true}},
      /*Q14*/ {{kLineitem, 0.013, true}, {kPart, 1.0, false}},
      /*Q15*/ {{kSupplier, 1.0, false}, {kLineitem, 0.04, true}},
      /*Q16*/
      {{kPartsupp, 1.0, false},
       {kPart, 1.0, false},
       {kSupplier, 1.0, false}},
      /*Q17*/ {{kLineitem, 0.35, true}, {kPart, 0.001, true}},
      /*Q18*/
      {{kCustomer, 1.0, false},
       {kOrders, 0.5, true},
       {kLineitem, 0.5, true}},
      /*Q19*/ {{kLineitem, 0.02, true}, {kPart, 0.02, true}},
      /*Q20*/
      {{kSupplier, 1.0, false},
       {kNation, 1.0, false},
       {kPartsupp, 1.0, false},
       {kPart, 0.01, true},
       {kLineitem, 0.15, true}},
      /*Q21*/
      {{kSupplier, 1.0, false},
       {kLineitem, 0.45, true},
       {kOrders, 0.45, true},
       {kNation, 1.0, false}},
      /*Q22*/ {{kCustomer, 0.30, true}, {kOrders, 0.5, true}},
  };
  NASHDB_CHECK(t >= 1 && t <= 22);
  return kTemplates[static_cast<std::size_t>(t - 1)];
}

// Queries cycle template numbers; template is recoverable from the id.
constexpr QueryId kTemplateStride = 100;

}  // namespace

Dataset MakeTpchDataset(const TpchOptions& options) {
  Dataset ds;
  const double total_tuples =
      options.db_gb * static_cast<double>(options.tuples_per_gb);
  for (const TableWeight& tw : kTableWeights) {
    TableSpec spec;
    spec.id = tw.table;
    spec.name = tw.name;
    spec.tuples = std::max<TupleCount>(
        8, static_cast<TupleCount>(total_tuples * tw.weight));
    ds.tables.push_back(spec);
  }
  return ds;
}

Workload MakeTpchWorkload(const TpchOptions& options) {
  Workload wl;
  wl.name = "TPC-H";
  wl.dataset = MakeTpchDataset(options);
  Rng rng(options.seed);

  for (std::size_t i = 0; i < options.num_queries; ++i) {
    const int tmpl = static_cast<int>(i % 22) + 1;
    std::vector<std::pair<TableId, TupleRange>> ranges;
    for (const Access& a : TemplateAccesses(tmpl)) {
      const TupleCount n = wl.dataset.TableSize(a.table);
      TupleCount len = static_cast<TupleCount>(
          std::ceil(a.fraction * static_cast<double>(n)));
      if (len == 0) len = 1;
      if (len > n) len = n;
      TupleIndex start = 0;
      if (a.date_positioned && len < n) {
        // Date parameters favor recent data: bias the window toward the
        // tail of the date-clustered table (2/3 of instances in the most
        // recent half).
        const TupleCount head_room = n - len;
        if (rng.Bernoulli(2.0 / 3.0)) {
          start = head_room / 2 + rng.Uniform(head_room / 2 + 1);
        } else {
          start = rng.Uniform(head_room + 1);
        }
      }
      ranges.emplace_back(a.table, TupleRange{start, start + len});
    }
    const QueryId id =
        static_cast<QueryId>(i) * kTemplateStride + static_cast<QueryId>(tmpl);
    TimedQuery tq;
    tq.query = MakeQuery(id, options.price, ranges);
    tq.arrival = options.arrival_span_s > 0.0
                     ? rng.NextDouble() * options.arrival_span_s
                     : 0.0;
    wl.queries.push_back(std::move(tq));
  }
  wl.SortByArrival();
  return wl;
}

int TpchTemplateOf(const Query& query) {
  return static_cast<int>(query.id % kTemplateStride);
}

}  // namespace nashdb
