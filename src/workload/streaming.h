#ifndef NASHDB_WORKLOAD_STREAMING_H_
#define NASHDB_WORKLOAD_STREAMING_H_

#include <cstdint>
#include <vector>

#include "common/random.h"
#include "common/types.h"
#include "workload/workload.h"

namespace nashdb {

/// One workload phase of a chaos scenario (DESIGN.md §13): a time window
/// during which the base query stream is modulated. Phases compose — a
/// diurnal cycle can underlie a flash crowd — and every effect is a pure
/// function of simulated time plus the stream's seeded Rng, so the
/// generated stream is bit-reproducible.
struct StreamPhase {
  enum class Kind {
    kDiurnal,     ///< Arrival rate swings sinusoidally around the base.
    kFlashCrowd,  ///< Rate multiplied by rate_x; arrivals pile onto
                  ///< [focus_lo, focus_hi) of the table.
    kSkewDrift,   ///< The hot region's center drifts linearly to drift_to.
    kPriceWar,    ///< A tenant_frac share of queries bids price_x the base
                  ///< price (tenants outbidding each other for replicas).
  };
  Kind kind = Kind::kDiurnal;

  /// Active window in simulated seconds ([start_s, end_s); end_s <= 0
  /// means "until the end of the run").
  SimTime start_s = 0.0;
  SimTime end_s = -1.0;

  /// kDiurnal: period of the cycle and relative amplitude in [0, 1) —
  /// the instantaneous rate multiplier is 1 + amplitude * sin(2π t / T).
  double period_s = 24.0 * 3600.0;
  double amplitude = 0.5;

  /// kFlashCrowd: arrival-rate multiplier while active, the table
  /// fraction the crowd piles onto, and the probability an arriving
  /// query belongs to the crowd.
  double rate_x = 4.0;
  double focus_lo = 0.9;
  double focus_hi = 1.0;
  double focus_prob = 0.9;

  /// kSkewDrift: hot-region center (fraction of the table) this phase
  /// drifts to, linearly over [start_s, end_s).
  double drift_to = 0.2;

  /// kPriceWar: price multiplier and the share of queries that bid it.
  double price_x = 8.0;
  double tenant_frac = 0.3;
};

/// Options of the streaming phased workload generator.
struct PhasedStreamOptions {
  double db_gb = 100.0;
  TupleCount tuples_per_gb = kDefaultTuplesPerGb;
  /// Total queries the stream produces before Next() returns false.
  std::size_t num_queries = 10'000;
  Money price = 1.0;
  /// Nominal span of the run: the base inter-arrival time is
  /// duration_s / num_queries (modulated by phases, so the realized
  /// makespan tracks the phase schedule).
  SimTime duration_s = 24.0 * 3600.0;
  /// Baseline skew: a hot_prob share of queries scans a region
  /// hot_frac of the table wide centered at hot_center (fractions of
  /// the clustered order); the rest scan uniformly.
  double hot_prob = 0.8;
  double hot_frac = 0.2;
  double hot_center = 0.8;
  /// Mean scan length as a fraction of the table (exponential draw,
  /// capped at the table).
  double scan_frac = 0.05;
  std::uint64_t seed = 23;
  std::vector<StreamPhase> phases;
};

/// Streaming synthetic workload (DESIGN.md §13): generates TimedQuery
/// values one at a time in nondecreasing arrival order, holding O(1)
/// state — a 10⁷–10⁸-query scenario run never materializes its workload.
/// The sequence is a pure function of the options (seeded Rng), so two
/// streams built from equal options produce bit-identical queries;
/// Materialize() captures the same sequence as a Workload for
/// golden-equivalence tests against the vector-driven driver path.
class PhasedQueryStream : public QueryStream {
 public:
  explicit PhasedQueryStream(const PhasedStreamOptions& options);

  /// The single-table schema the stream scans.
  const Dataset& dataset() const { return dataset_; }

  bool Next(TimedQuery* out) override;

  /// Restarts the stream from query 0 (identical sequence).
  void Reset();

  /// Runs a fresh stream with the same options to completion into a
  /// Workload (for tests and the flag-driven bit-identity gate; defeats
  /// the purpose at 10⁷ queries).
  Workload Materialize() const;

 private:
  /// Instantaneous arrival-rate multiplier at t (diurnal x flash crowd).
  double RateMultiplier(SimTime t) const;
  /// Hot-region center at t (after any active/completed skew drift).
  double HotCenter(SimTime t) const;
  /// Flash-crowd phase active at t, or nullptr.
  const StreamPhase* ActiveCrowd(SimTime t) const;
  /// Price-war phase active at t, or nullptr.
  const StreamPhase* ActiveWar(SimTime t) const;

  PhasedStreamOptions opt_;
  Dataset dataset_;
  TupleCount table_tuples_ = 0;
  Rng rng_;
  std::size_t emitted_ = 0;
  SimTime clock_ = 0.0;
};

}  // namespace nashdb

#endif  // NASHDB_WORKLOAD_STREAMING_H_
