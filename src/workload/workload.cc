#include "workload/workload.h"

#include <algorithm>

#include "common/logging.h"

namespace nashdb {

TupleCount Dataset::TableSize(TableId id) const {
  for (const TableSpec& t : tables) {
    if (t.id == id) return t.tuples;
  }
  NASHDB_CHECK(false) << "unknown table id " << id;
  return 0;
}

TupleCount Dataset::TotalTuples() const {
  TupleCount total = 0;
  for (const TableSpec& t : tables) total += t.tuples;
  return total;
}

TupleCount Workload::TotalTuplesRead() const {
  TupleCount total = 0;
  for (const TimedQuery& tq : queries) total += tq.query.TotalTuples();
  return total;
}

void Workload::SortByArrival() {
  std::stable_sort(queries.begin(), queries.end(),
                   [](const TimedQuery& a, const TimedQuery& b) {
                     return a.arrival < b.arrival;
                   });
}

}  // namespace nashdb
