#include "workload/synthetic.h"

#include <algorithm>
#include <cmath>

#include "common/logging.h"
#include "common/random.h"

namespace nashdb {
namespace {

Dataset SingleTableDataset(const char* name, double db_gb,
                           TupleCount tuples_per_gb) {
  Dataset ds;
  TableSpec spec;
  spec.id = 0;
  spec.name = name;
  spec.tuples = static_cast<TupleCount>(
      db_gb * static_cast<double>(tuples_per_gb));
  NASHDB_CHECK_GT(spec.tuples, 0u);
  ds.tables.push_back(spec);
  return ds;
}

// Diurnal arrival time over [0, span): three day/night cycles across 72 h.
// Rejection-samples a sinusoidally modulated intensity.
SimTime DiurnalArrival(Rng* rng, SimTime span) {
  for (;;) {
    const SimTime t = rng->NextDouble() * span;
    const double phase = 2.0 * 3.14159265358979 * t / (24.0 * 3600.0);
    const double intensity = 0.6 + 0.4 * std::sin(phase);  // in (0.2, 1.0]
    if (rng->NextDouble() < intensity) return t;
  }
}

}  // namespace

Workload MakeBernoulliWorkload(const BernoulliOptions& options) {
  Workload wl;
  wl.name = "Bernoulli";
  wl.dataset =
      SingleTableDataset("fact", options.db_gb, options.tuples_per_gb);
  const TupleCount n = wl.dataset.tables[0].tuples;
  const TupleCount gb = options.tuples_per_gb;
  const std::uint64_t total_gb = std::max<std::uint64_t>(1, n / gb);
  Rng rng(options.seed);

  for (std::size_t i = 0; i < options.num_queries; ++i) {
    // Number of whole GB reached back from the end: geometric with
    // continuation probability continue_prob, capped at the table size.
    const std::uint64_t reach =
        1 + rng.Geometric(1.0 - options.continue_prob, total_gb - 1);
    TupleCount depth = reach * gb;
    // Jitter within the deepest GB so starts are not all block-aligned.
    depth = std::min<TupleCount>(n, depth - rng.Uniform(gb));
    const TupleIndex start = n - depth;
    TimedQuery tq;
    tq.query = MakeQuery(static_cast<QueryId>(i), options.price,
                         {{0, TupleRange{start, n}}});
    tq.arrival = options.arrival_span_s > 0.0
                     ? rng.NextDouble() * options.arrival_span_s
                     : 0.0;
    wl.queries.push_back(std::move(tq));
  }
  wl.SortByArrival();
  return wl;
}

Workload MakeRandomWorkload(const RandomWorkloadOptions& options) {
  Workload wl;
  wl.name = "Random";
  wl.dataset =
      SingleTableDataset("fact", options.db_gb, options.tuples_per_gb);
  const TupleCount n = wl.dataset.tables[0].tuples;
  Rng rng(options.seed);

  // Aggregated range queries: uniform endpoints, but never degenerate
  // slivers (a near-empty scan would give its tuples a per-tuple price
  // thousands of times any other query's — Eq. 1 divides by Size(s)).
  const TupleCount min_span = std::max<TupleCount>(1, options.tuples_per_gb);
  for (std::size_t i = 0; i < options.num_queries; ++i) {
    TupleIndex a = rng.Uniform(n);
    TupleIndex b = rng.Uniform(n);
    if (a > b) std::swap(a, b);
    if (b - a < min_span) {
      b = std::min<TupleIndex>(n, a + min_span);
      a = b - min_span;
    }
    TimedQuery tq;
    tq.query = MakeQuery(static_cast<QueryId>(i), options.price,
                         {{0, TupleRange{a, b}}});
    tq.arrival = rng.NextDouble() * options.span_s;
    wl.queries.push_back(std::move(tq));
  }
  wl.SortByArrival();
  return wl;
}

Workload MakeRealData1StaticWorkload(const RealData1StaticOptions& options) {
  Workload wl;
  wl.name = "Real data 1 (static)";
  wl.dataset =
      SingleTableDataset("warehouse", options.db_gb, options.tuples_per_gb);
  const TupleCount n = wl.dataset.tables[0].tuples;
  Rng rng(options.seed);

  // A dashboard refresh executes a fixed library of report queries. Each
  // template is a large aggregate scan: length centered at 75% of the
  // table (median read 600 GB of 800 GB), never below 5 GB (Table 1).
  const TupleCount min_len = std::max<TupleCount>(
      1, static_cast<TupleCount>(5.0 * options.tuples_per_gb));
  struct Template {
    TupleIndex start;
    TupleCount len;
  };
  std::vector<Template> templates;
  templates.reserve(options.num_templates);
  for (std::size_t t = 0; t < options.num_templates; ++t) {
    // Log-normal-ish spread around 0.75 n (median read 600 GB of 800 GB,
    // Table 1); modest sigma keeps the mixture median near 0.75.
    double frac = 0.75 * std::exp(0.2 * rng.Gaussian());
    frac = std::clamp(frac, 0.0, 1.0);
    TupleCount len =
        std::max<TupleCount>(min_len, static_cast<TupleCount>(
                                          frac * static_cast<double>(n)));
    len = std::min<TupleCount>(len, n);
    const TupleIndex start = len < n ? rng.Uniform(n - len + 1) : 0;
    templates.push_back(Template{start, len});
  }

  for (std::size_t i = 0; i < options.num_queries; ++i) {
    // Dashboards refresh some reports more than others: Zipf popularity.
    const std::size_t t =
        static_cast<std::size_t>(rng.Zipf(options.num_templates, 1.1));
    const Template& tpl = templates[t];
    // Per-instance parameter jitter (~±1% of the table): real dashboard
    // queries re-run with fresh date bounds, so scan endpoints differ
    // slightly between refreshes.
    const TupleCount jitter_span = std::max<TupleCount>(1, n / 100);
    TupleIndex start = tpl.start;
    const TupleCount wiggle = rng.Uniform(jitter_span);
    start = wiggle > start ? 0 : start - wiggle;
    TupleIndex end = std::min<TupleIndex>(
        n, start + tpl.len + rng.Uniform(jitter_span));
    if (end <= start) end = std::min<TupleIndex>(n, start + 1);
    TimedQuery tq;
    tq.query = MakeQuery(static_cast<QueryId>(i), options.price,
                         {{0, TupleRange{start, end}}});
    tq.arrival = 0.0;
    wl.queries.push_back(std::move(tq));
  }
  return wl;
}

Workload MakeRealData1DynamicWorkload(
    const RealData1DynamicOptions& options) {
  Workload wl;
  wl.name = "Real data 1 (dynamic)";
  wl.dataset =
      SingleTableDataset("analytics", options.db_gb, options.tuples_per_gb);
  const TupleCount n = wl.dataset.tables[0].tuples;
  Rng rng(options.seed);

  // Descriptive analytics over 72 h: a hot region whose center drifts
  // forward through the clustered table (analysts chase recent data);
  // median read 50 GB of 300 GB.
  for (std::size_t i = 0; i < options.num_queries; ++i) {
    const SimTime t = DiurnalArrival(&rng, options.span_s);
    const double progress = t / options.span_s;  // 0 -> 1 over 72 h
    // Hot center sweeps the last 60% of the table.
    const double center_frac = 0.4 + 0.6 * progress;
    double frac = (50.0 / 300.0) * std::exp(0.5 * rng.Gaussian());
    frac = std::clamp(frac, 1.0 / static_cast<double>(n), 1.0);
    const TupleCount len = std::max<TupleCount>(
        1, static_cast<TupleCount>(frac * static_cast<double>(n)));
    double center =
        center_frac + 0.08 * rng.Gaussian();  // jitter around the hot spot
    center = std::clamp(center, 0.0, 1.0);
    const double start_f = std::clamp(
        center - frac / 2.0, 0.0,
        1.0 - static_cast<double>(len) / static_cast<double>(n));
    const TupleIndex start =
        static_cast<TupleIndex>(start_f * static_cast<double>(n));
    TimedQuery tq;
    tq.query = MakeQuery(static_cast<QueryId>(i), options.price,
                         {{0, TupleRange{start, start + len}}});
    tq.arrival = t;
    wl.queries.push_back(std::move(tq));
  }
  wl.SortByArrival();
  return wl;
}

Workload MakeRealData2DynamicWorkload(
    const RealData2DynamicOptions& options) {
  Workload wl;
  wl.name = "Real data 2 (dynamic)";
  wl.dataset =
      SingleTableDataset("features", options.db_gb, options.tuples_per_gb);
  const TupleCount n = wl.dataset.tables[0].tuples;
  Rng rng(options.seed);

  // Predictive analytics: bimodal. Training sweeps read ~15% of a 3 TB
  // table (median 450 GB); lookups read almost nothing (min 80 KB). The
  // favored feature regions shift every ~24 h.
  const TupleCount min_len = 1;  // 80 KB is below one simulated tuple-GB
  for (std::size_t i = 0; i < options.num_queries; ++i) {
    const SimTime t = DiurnalArrival(&rng, options.span_s);
    const int day = static_cast<int>(t / (24.0 * 3600.0));
    // Each day favors a different third of the table.
    const double region_lo = static_cast<double>(day % 3) / 3.0;
    TimedQuery tq;
    if (rng.Bernoulli(0.6)) {
      // Training sweep.
      double frac = 0.15 * std::exp(0.4 * rng.Gaussian());
      frac = std::clamp(frac, 0.01, 0.5);
      const TupleCount len = std::max<TupleCount>(
          min_len, static_cast<TupleCount>(frac * static_cast<double>(n)));
      const double start_f = std::clamp(
          region_lo + rng.NextDouble() * (1.0 / 3.0), 0.0,
          1.0 - static_cast<double>(len) / static_cast<double>(n));
      const TupleIndex start =
          static_cast<TupleIndex>(start_f * static_cast<double>(n));
      tq.query = MakeQuery(static_cast<QueryId>(i), options.price,
                           {{0, TupleRange{start, start + len}}});
    } else {
      // Tiny lookup anywhere in the favored region.
      const TupleCount len = min_len + rng.Uniform(4);
      const TupleIndex start = static_cast<TupleIndex>(
          region_lo * static_cast<double>(n) +
          static_cast<double>(rng.Uniform(n / 3)));
      const TupleIndex end = std::min<TupleIndex>(n, start + len);
      tq.query = MakeQuery(static_cast<QueryId>(i), options.price,
                           {{0, TupleRange{start, end}}});
    }
    tq.arrival = t;
    wl.queries.push_back(std::move(tq));
  }
  wl.SortByArrival();
  return wl;
}

}  // namespace nashdb
