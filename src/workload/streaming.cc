#include "workload/streaming.h"

#include <algorithm>
#include <cmath>

#include "common/logging.h"
#include "common/query.h"

namespace nashdb {
namespace {

constexpr double kPi = 3.14159265358979;

bool PhaseActive(const StreamPhase& p, SimTime t) {
  return t >= p.start_s && (p.end_s <= 0.0 || t < p.end_s);
}

/// Exponential(1) draw: -ln(1 - u) with u in [0, 1).
double Exp1(Rng* rng) { return -std::log(1.0 - rng->NextDouble()); }

}  // namespace

PhasedQueryStream::PhasedQueryStream(const PhasedStreamOptions& options)
    : opt_(options), rng_(options.seed) {
  NASHDB_CHECK_GT(opt_.duration_s, 0.0);
  NASHDB_CHECK_GT(opt_.num_queries, 0u);
  TableSpec spec;
  spec.id = 0;
  spec.name = "fact";
  spec.tuples = static_cast<TupleCount>(
      opt_.db_gb * static_cast<double>(opt_.tuples_per_gb));
  NASHDB_CHECK_GT(spec.tuples, 0u);
  dataset_.tables.push_back(spec);
  table_tuples_ = spec.tuples;
}

double PhasedQueryStream::RateMultiplier(SimTime t) const {
  double rate = 1.0;
  for (const StreamPhase& p : opt_.phases) {
    if (!PhaseActive(p, t)) continue;
    if (p.kind == StreamPhase::Kind::kDiurnal) {
      rate *= 1.0 + p.amplitude * std::sin(2.0 * kPi * t / p.period_s);
    } else if (p.kind == StreamPhase::Kind::kFlashCrowd) {
      rate *= p.rate_x;
    }
  }
  // A diurnal trough can dip near zero; floor the rate so inter-arrival
  // gaps stay finite.
  return std::max(rate, 0.05);
}

double PhasedQueryStream::HotCenter(SimTime t) const {
  double center = opt_.hot_center;
  for (const StreamPhase& p : opt_.phases) {
    if (p.kind != StreamPhase::Kind::kSkewDrift) continue;
    if (t < p.start_s) continue;
    const SimTime end = p.end_s > 0.0 ? p.end_s : opt_.duration_s;
    const double frac =
        end > p.start_s
            ? std::clamp((t - p.start_s) / (end - p.start_s), 0.0, 1.0)
            : 1.0;
    // Linear drift from wherever the previous phases left the center; a
    // completed drift phase keeps contributing its endpoint.
    center += frac * (p.drift_to - center);
  }
  return std::clamp(center, 0.0, 1.0);
}

const StreamPhase* PhasedQueryStream::ActiveCrowd(SimTime t) const {
  for (const StreamPhase& p : opt_.phases) {
    if (p.kind == StreamPhase::Kind::kFlashCrowd && PhaseActive(p, t)) {
      return &p;
    }
  }
  return nullptr;
}

const StreamPhase* PhasedQueryStream::ActiveWar(SimTime t) const {
  for (const StreamPhase& p : opt_.phases) {
    if (p.kind == StreamPhase::Kind::kPriceWar && PhaseActive(p, t)) {
      return &p;
    }
  }
  return nullptr;
}

bool PhasedQueryStream::Next(TimedQuery* out) {
  if (emitted_ >= opt_.num_queries) return false;

  // Arrival: exponential inter-arrival around the base gap, shortened by
  // the instantaneous rate multiplier (evaluated at the previous arrival —
  // a standard quasi-inhomogeneous-Poisson step that keeps generation
  // O(1) and strictly forward in time).
  const double base_gap =
      opt_.duration_s / static_cast<double>(opt_.num_queries);
  clock_ += base_gap * Exp1(&rng_) / RateMultiplier(clock_);
  const SimTime t = clock_;

  // Scan placement: flash-crowd focus region first, then the (possibly
  // drifted) hot region, else uniform.
  const TupleCount n = table_tuples_;
  double lo_frac = 0.0;
  double hi_frac = 1.0;
  const StreamPhase* crowd = ActiveCrowd(t);
  if (crowd != nullptr && rng_.Bernoulli(crowd->focus_prob)) {
    lo_frac = std::clamp(crowd->focus_lo, 0.0, 1.0);
    hi_frac = std::clamp(crowd->focus_hi, lo_frac, 1.0);
  } else if (rng_.Bernoulli(opt_.hot_prob)) {
    const double center = HotCenter(t);
    lo_frac = std::clamp(center - opt_.hot_frac / 2.0, 0.0, 1.0);
    hi_frac = std::clamp(center + opt_.hot_frac / 2.0, lo_frac, 1.0);
  }

  // Scan length: exponential with mean scan_frac of the table, at least
  // one block-ish sliver (tuples_per_gb) so Eq. 1's per-tuple price never
  // explodes on a degenerate scan.
  const TupleCount min_len =
      std::min<TupleCount>(n, std::max<TupleCount>(1, opt_.tuples_per_gb));
  TupleCount len = static_cast<TupleCount>(
      opt_.scan_frac * static_cast<double>(n) * Exp1(&rng_));
  len = std::clamp<TupleCount>(len, min_len, n);

  const auto region_lo = static_cast<TupleIndex>(
      lo_frac * static_cast<double>(n));
  const auto region_hi = static_cast<TupleIndex>(
      hi_frac * static_cast<double>(n));
  const TupleIndex start_max =
      region_hi > region_lo + len ? region_hi - len : region_lo;
  const TupleIndex start =
      start_max > region_lo
          ? rng_.UniformRange(region_lo, start_max + 1)
          : region_lo;
  const TupleIndex end = std::min<TupleIndex>(start + len, n);

  Money price = opt_.price;
  const StreamPhase* war = ActiveWar(t);
  if (war != nullptr && rng_.Bernoulli(war->tenant_frac)) {
    price *= war->price_x;
  }

  out->arrival = t;
  out->query = MakeQuery(static_cast<QueryId>(emitted_), price,
                         {{0, TupleRange{start, end}}});
  ++emitted_;
  return true;
}

void PhasedQueryStream::Reset() {
  rng_.Seed(opt_.seed);
  emitted_ = 0;
  clock_ = 0.0;
}

Workload PhasedQueryStream::Materialize() const {
  PhasedQueryStream fresh(opt_);
  Workload wl;
  wl.name = "phased";
  wl.dataset = fresh.dataset();
  TimedQuery tq;
  while (fresh.Next(&tq)) wl.queries.push_back(tq);
  return wl;
}

}  // namespace nashdb
