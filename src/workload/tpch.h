#ifndef NASHDB_WORKLOAD_TPCH_H_
#define NASHDB_WORKLOAD_TPCH_H_

#include <cstdint>

#include "common/types.h"
#include "workload/workload.h"

namespace nashdb {

/// TPC-H table ids in this model.
enum TpchTable : TableId {
  kLineitem = 0,
  kOrders = 1,
  kPartsupp = 2,
  kPart = 3,
  kCustomer = 4,
  kSupplier = 5,
  kNation = 6,
  kRegion = 7,
};

struct TpchOptions {
  /// Database size in GB (the paper uses 1 TB = 1000).
  double db_gb = 1000.0;
  /// Simulated tuples per GB.
  TupleCount tuples_per_gb = kDefaultTuplesPerGb;
  /// Number of query instances to generate (templates cycle 1..22 with
  /// randomized parameters).
  std::size_t num_queries = 220;
  /// Price assigned to every query (cents). Individual benches override
  /// per-template prices afterwards (e.g. the Figure 9a experiment).
  Money price = 0.01;
  /// If > 0, arrivals are spread uniformly over this many seconds
  /// (dynamic); if 0, all queries arrive at time zero (static batch).
  SimTime arrival_span_s = 0.0;
  std::uint64_t seed = 42;
};

/// Builds the TPC-H schema at the given scale. lineitem/orders/... sizes
/// follow the official per-scale-factor cardinality ratios; lineitem and
/// orders are clustered by date (so date-range predicates become clustered
/// range scans, exactly the scans NashDB consumes — §2).
Dataset MakeTpchDataset(const TpchOptions& options);

/// Generates a workload of all 22 TPC-H query templates with randomized
/// date-range parameters. Each template reads the tables the real TPC-H
/// query touches, as full scans for joined dimension tables and as
/// date-positioned range scans for the date-filtered fact tables.
///
/// This substitutes for running the real 22 SQL templates through a DBMS
/// optimizer: NashDB only ever sees the optimizer's leaf-level range scans
/// (Figure 1), which is precisely what this generator emits.
Workload MakeTpchWorkload(const TpchOptions& options);

/// The 1-based TPC-H template number of a generated query (derived from
/// Query::id). Used by the mixed-priority experiment (Figure 9a) to
/// reprice one template.
int TpchTemplateOf(const Query& query);

}  // namespace nashdb

#endif  // NASHDB_WORKLOAD_TPCH_H_
