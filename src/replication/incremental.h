#ifndef NASHDB_REPLICATION_INCREMENTAL_H_
#define NASHDB_REPLICATION_INCREMENTAL_H_

#include <vector>

#include "common/status.h"
#include "replication/cluster_config.h"
#include "replication/replication.h"

namespace nashdb {

/// Options for incremental repacking.
struct IncrementalOptions {
  /// Fixed cluster size (Threshold/Hypergraph baselines); 0 = elastic
  /// (grow as needed, drop empty nodes).
  std::size_t max_nodes = 0;

  /// Previous nodes that cannot be reused (crashed machines). Indexed by
  /// previous-config node id; shorter vectors are implicitly padded with
  /// false. An unavailable node contributes no coverage, receives no
  /// placements, and therefore ends the repack empty — in elastic mode it
  /// is decommissioned (the transition planner then matches its
  /// replacement as a fresh provision).
  std::vector<bool> unavailable_prev_nodes;

  /// Previous nodes that are alive but unroutable (network-partitioned,
  /// DESIGN.md §13). Indexed like `unavailable_prev_nodes`. A pinned node
  /// keeps exactly its previous placements (it is still rented and its
  /// data is intact — decommissioning or evacuating it would buy
  /// nothing), but contributes no *routable* coverage: its copies do not
  /// count toward replica targets, it receives no new placements, and it
  /// is excluded from elastic consolidation. Repair therefore places
  /// additional routable copies elsewhere while the partition lasts.
  /// Requires `fragments` to be the same list as `previous`'s (placements
  /// are carried by fragment index); only the emergency-repair path sets
  /// this.
  std::vector<bool> pinned_prev_nodes;
};

/// Placement that minimizes churn across reconfigurations. A fresh
/// Best-First-Fit-Decreasing packing is order-sensitive: a single ±1
/// replica change reshuffles every later placement, and the resulting
/// transition moves a large fraction of the database every period — the
/// paper instead reports tiny per-hour transfers (< 200 MB on a 3 TB
/// database, §10.3), which implies placement stability. RepackIncremental
/// provides it:
///
///   1. replicas of each fragment are first assigned to nodes of the
///      *previous* configuration whose holdings already cover the
///      fragment's tuple range (even across fragment-boundary changes,
///      via interval containment),
///   2. remaining replicas go first-fit onto existing nodes with room,
///   3. new nodes are provisioned only when nothing fits (subject to
///      max_nodes), and nodes left empty are decommissioned.
///
/// The minimal-transfer matching of §7 then prices only genuinely new
/// data. With previous == nullptr this degenerates to a BFFD-style
/// first-fit build (used for the bootstrap configuration).
///
/// Every fragment's achieved replica count is written back; a count may
/// be reduced below the request when a fixed-size cluster runs out of
/// space, but at least one copy of every fragment is always placed
/// (InvalidArgument otherwise).
Result<ClusterConfig> RepackIncremental(
    const ReplicationParams& params, std::vector<FragmentInfo> fragments,
    const ClusterConfig* previous, const IncrementalOptions& options = {});

/// Emergency re-replication after node failures (degraded-mode repair):
/// rebuilds `config` with the crashed nodes (`node_dead[m]`, indexed by
/// `config` node id) excluded, restoring every fragment's replica count on
/// the surviving nodes plus however many fresh nodes are needed. Replicas
/// already on live nodes stay put, so the §7 transition prices only the
/// lost copies; those are re-copied from the durable base store (dead
/// nodes are priced as empty by the failure-aware PlanTransition), which
/// is what makes even zero-live-replica fragments restorable.
///
/// `node_partitioned` (optional, same indexing) marks alive-but-unroutable
/// nodes: they are *pinned* — kept in place with their data, still billed
/// — while enough extra routable copies are placed elsewhere to restore
/// each fragment's routable replica count (observer-relative partition
/// semantics, DESIGN.md §13). A node both dead and partitioned is treated
/// as dead. Returns the repaired configuration; fails only if fragments
/// cannot fit (bubbled up from RepackIncremental).
Result<ClusterConfig> PlanEmergencyRepair(
    const ClusterConfig& config, const std::vector<bool>& node_dead,
    const std::vector<bool>& node_partitioned = {});

}  // namespace nashdb

#endif  // NASHDB_REPLICATION_INCREMENTAL_H_
