#ifndef NASHDB_REPLICATION_INCREMENTAL_H_
#define NASHDB_REPLICATION_INCREMENTAL_H_

#include <vector>

#include "common/status.h"
#include "replication/cluster_config.h"
#include "replication/replication.h"

namespace nashdb {

/// Options for incremental repacking.
struct IncrementalOptions {
  /// Fixed cluster size (Threshold/Hypergraph baselines); 0 = elastic
  /// (grow as needed, drop empty nodes).
  std::size_t max_nodes = 0;
};

/// Placement that minimizes churn across reconfigurations. A fresh
/// Best-First-Fit-Decreasing packing is order-sensitive: a single ±1
/// replica change reshuffles every later placement, and the resulting
/// transition moves a large fraction of the database every period — the
/// paper instead reports tiny per-hour transfers (< 200 MB on a 3 TB
/// database, §10.3), which implies placement stability. RepackIncremental
/// provides it:
///
///   1. replicas of each fragment are first assigned to nodes of the
///      *previous* configuration whose holdings already cover the
///      fragment's tuple range (even across fragment-boundary changes,
///      via interval containment),
///   2. remaining replicas go first-fit onto existing nodes with room,
///   3. new nodes are provisioned only when nothing fits (subject to
///      max_nodes), and nodes left empty are decommissioned.
///
/// The minimal-transfer matching of §7 then prices only genuinely new
/// data. With previous == nullptr this degenerates to a BFFD-style
/// first-fit build (used for the bootstrap configuration).
///
/// Every fragment's achieved replica count is written back; a count may
/// be reduced below the request when a fixed-size cluster runs out of
/// space, but at least one copy of every fragment is always placed
/// (InvalidArgument otherwise).
Result<ClusterConfig> RepackIncremental(
    const ReplicationParams& params, std::vector<FragmentInfo> fragments,
    const ClusterConfig* previous, const IncrementalOptions& options = {});

}  // namespace nashdb

#endif  // NASHDB_REPLICATION_INCREMENTAL_H_
