#ifndef NASHDB_REPLICATION_PACKER_H_
#define NASHDB_REPLICATION_PACKER_H_

#include <vector>

#include "common/status.h"
#include "replication/cluster_config.h"
#include "replication/replication.h"

namespace nashdb {

class ThreadPool;

/// Packs the decided replicas onto the fewest nodes using the Best First
/// Fit Decreasing heuristic of [45] (paper §6, "Replica Allocation"):
/// fragments are processed in decreasing order of replica count; each
/// replica goes on the first node in list order that (a) has room and
/// (b) does not already store this fragment; if none exists, a new node is
/// appended. This is the class-constrained bin packing problem (NP-hard);
/// BFFD has an approximation factor of 2.
///
/// Scale: the decreasing-order sort fans out per table over `pool` (each
/// table's slice sorted with the one global comparator, then k-way merged
/// under the same comparator — the comparator is a strict total order, so
/// the merged order is *identical* to the historical single sort), and the
/// first-fit scan runs on a segment tree over per-node remaining capacity
/// (first node with room in O(log nodes) instead of O(nodes)). Both are
/// pure accelerations: the packed configuration is bit-identical to the
/// original serial O(fragments x nodes) implementation for every input,
/// with or without a pool. Pass nullptr to stay serial.
///
/// Preconditions: every fragment's replicas are already decided
/// (DecideReplication) and every fragment fits a single node
/// (Size(f) <= node_disk). Returns InvalidArgument otherwise.
Result<ClusterConfig> PackReplicasBffd(const ReplicationParams& params,
                                       std::vector<FragmentInfo> fragments,
                                       ThreadPool* pool = nullptr);

/// Materializes a ClusterConfig from an explicit placement plan:
/// `node_fragments[m]` lists the fragments stored on node m. Each
/// fragment's `replicas` field is overwritten with the achieved count.
/// Used by baseline systems (Threshold/Hypergraph) that compute placements
/// themselves. Fails if a node exceeds capacity or holds duplicates.
Result<ClusterConfig> BuildConfigFromPlacement(
    const ReplicationParams& params, std::vector<FragmentInfo> fragments,
    const std::vector<std::vector<FlatFragmentId>>& node_fragments);

}  // namespace nashdb

#endif  // NASHDB_REPLICATION_PACKER_H_
