#ifndef NASHDB_REPLICATION_NASH_H_
#define NASHDB_REPLICATION_NASH_H_

#include <string>

#include "replication/cluster_config.h"

namespace nashdb {

/// Verdict of the Nash-equilibrium audit (paper Definition 6.1 /
/// Appendix D).
struct NashReport {
  bool is_equilibrium = true;
  /// Human-readable description of the first violated condition (empty
  /// when in equilibrium).
  std::string violation;

  /// Total profit (Eq. 8) summed over all nodes, for diagnostics.
  Money total_profit = 0.0;
};

/// Audits the four equilibrium conditions of Definition 6.1 against a
/// cluster configuration:
///   1. no node can drop a replica and gain (every held replica has
///      I(f) - C(f) >= 0),
///   2. no node can add a replica and gain (for every fragment,
///      income at Replicas(f)+1 copies is <= cost),
///   3. no node can swap a replica for another and gain (implied by 1+2,
///      but verified directly),
///   4. no entrant node can assemble a profitable set (implied by 2, but
///      verified via the most profitable candidate replica).
///
/// Fragments with replicas forced above the economic ideal by
/// ReplicationParams::min_replicas are exempt from condition 1 when
/// `exempt_min_replicas` is true (a pure Eq. 9 configuration needs no
/// exemptions).
NashReport CheckNashEquilibrium(const ClusterConfig& config,
                                bool exempt_min_replicas = false);

/// Profit (Eq. 8) of one node under the configuration's economic
/// parameters: sum over held replicas of I(f) - C(f).
Money NodeProfit(const ClusterConfig& config, NodeId node);

}  // namespace nashdb

#endif  // NASHDB_REPLICATION_NASH_H_
