#ifndef NASHDB_REPLICATION_CLUSTER_CONFIG_H_
#define NASHDB_REPLICATION_CLUSTER_CONFIG_H_

#include <cstddef>
#include <vector>

#include "common/types.h"
#include "replication/replication.h"

namespace nashdb {

/// Flat fragment handle within a ClusterConfig (index into `fragments`).
using FlatFragmentId = std::uint32_t;

/// A complete cluster configuration (paper §6): the fragment list with
/// replica counts, the provisioned node count, and the replica→node
/// assignment. Invariants (checked by Valid()):
///   - no node stores two replicas of the same fragment,
///   - per-node used space <= params.node_disk,
///   - each fragment f appears on exactly f.replicas distinct nodes.
class ClusterConfig {
 public:
  ClusterConfig() = default;
  ClusterConfig(ReplicationParams params, std::vector<FragmentInfo> fragments)
      : params_(params), fragments_(std::move(fragments)) {}

  const ReplicationParams& params() const { return params_; }
  const std::vector<FragmentInfo>& fragments() const { return fragments_; }
  const FragmentInfo& fragment(FlatFragmentId id) const {
    return fragments_[id];
  }

  std::size_t node_count() const { return node_fragments_.size(); }

  /// Fragments stored on `node`.
  const std::vector<FlatFragmentId>& NodeFragments(NodeId node) const {
    return node_fragments_[node];
  }

  /// Nodes holding a replica of `frag`.
  const std::vector<NodeId>& FragmentNodes(FlatFragmentId frag) const {
    return fragment_nodes_[frag];
  }

  /// Tuples stored on `node`.
  TupleCount NodeUsage(NodeId node) const;

  /// Total monetary cost of the cluster per unit time (= nodes * rent).
  Money CostPerPeriod() const {
    return static_cast<Money>(node_count()) * params_.node_cost;
  }

  /// Total tuples stored across all replicas on all nodes.
  TupleCount TotalStoredTuples() const;

  /// Appends an empty node, returning its id.
  NodeId AddNode();

  /// Places one replica of `frag` on `node`. CHECK-fails on duplicate or
  /// capacity violation.
  void Place(NodeId node, FlatFragmentId frag);

  /// True if the node has room for `size` more tuples.
  bool Fits(NodeId node, TupleCount size) const {
    return NodeUsage(node) + size <= params_.node_disk;
  }

  /// True if `node` already stores `frag`.
  bool Holds(NodeId node, FlatFragmentId frag) const;

  /// Validates all configuration invariants; returns false with no side
  /// effects on violation.
  bool Valid() const;

  /// Test-only seam: overwrites the economic parameters in place. The
  /// checked mutators (Place) refuse to *build* invariant-violating
  /// states, so the ValidateConfig corruption tests (engine/validate.h)
  /// use this to create them after the fact — e.g. shrinking node_disk
  /// below what a node already stores yields an over-capacity node.
  void SetParamsForTest(const ReplicationParams& params) { params_ = params; }

 private:
  ReplicationParams params_;
  std::vector<FragmentInfo> fragments_;
  std::vector<std::vector<FlatFragmentId>> node_fragments_;
  std::vector<std::vector<NodeId>> fragment_nodes_;
  std::vector<TupleCount> node_usage_;
};

}  // namespace nashdb

#endif  // NASHDB_REPLICATION_CLUSTER_CONFIG_H_
