#include "replication/cluster_config.h"

#include <algorithm>

#include "common/logging.h"

namespace nashdb {

TupleCount ClusterConfig::NodeUsage(NodeId node) const {
  return node_usage_[node];
}

TupleCount ClusterConfig::TotalStoredTuples() const {
  TupleCount total = 0;
  for (TupleCount u : node_usage_) total += u;
  return total;
}

NodeId ClusterConfig::AddNode() {
  node_fragments_.emplace_back();
  node_usage_.push_back(0);
  return static_cast<NodeId>(node_fragments_.size() - 1);
}

bool ClusterConfig::Holds(NodeId node, FlatFragmentId frag) const {
  const auto& frags = node_fragments_[node];
  return std::find(frags.begin(), frags.end(), frag) != frags.end();
}

void ClusterConfig::Place(NodeId node, FlatFragmentId frag) {
  NASHDB_CHECK_LT(node, node_fragments_.size());
  NASHDB_CHECK_LT(frag, fragments_.size());
  NASHDB_CHECK(!Holds(node, frag))
      << "node " << node << " already holds fragment " << frag;
  const TupleCount size = fragments_[frag].size();
  NASHDB_CHECK(Fits(node, size))
      << "fragment " << frag << " (" << size << " tuples) does not fit on "
      << "node " << node;
  node_fragments_[node].push_back(frag);
  node_usage_[node] += size;
  if (fragment_nodes_.size() < fragments_.size()) {
    fragment_nodes_.resize(fragments_.size());
  }
  fragment_nodes_[frag].push_back(node);
}

bool ClusterConfig::Valid() const {
  std::vector<std::size_t> replica_counts(fragments_.size(), 0);
  for (NodeId node = 0; node < node_fragments_.size(); ++node) {
    TupleCount used = 0;
    std::vector<FlatFragmentId> seen;
    for (FlatFragmentId f : node_fragments_[node]) {
      if (f >= fragments_.size()) return false;
      if (std::find(seen.begin(), seen.end(), f) != seen.end()) {
        return false;  // duplicate replica on one node
      }
      seen.push_back(f);
      used += fragments_[f].size();
      ++replica_counts[f];
    }
    if (used > params_.node_disk) return false;
    if (used != node_usage_[node]) return false;
  }
  for (std::size_t f = 0; f < fragments_.size(); ++f) {
    if (replica_counts[f] != fragments_[f].replicas) return false;
  }
  return true;
}

}  // namespace nashdb
