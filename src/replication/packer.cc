#include "replication/packer.h"

#include <algorithm>
#include <numeric>

#include "common/logging.h"
#include "common/metrics.h"
#include "common/thread_pool.h"

namespace nashdb {
namespace {

/// The one BFFD processing order: decreasing replica count, ties broken by
/// decreasing size for tighter packing, then by id for determinism. A
/// strict total order (the id tie-break), which is what lets the per-table
/// parallel sort + merge below reproduce the single global sort exactly.
struct BffdLess {
  const std::vector<FragmentInfo>* frags;
  bool operator()(FlatFragmentId a, FlatFragmentId b) const {
    const FragmentInfo& fa = (*frags)[a];
    const FragmentInfo& fb = (*frags)[b];
    if (fa.replicas != fb.replicas) return fa.replicas > fb.replicas;
    if (fa.size() != fb.size()) return fa.size() > fb.size();
    return a < b;
  }
};

/// Sorts fragment ids into BFFD order: per-table fan-out over `pool`, then
/// a k-way merge of the sorted slices under the same comparator. Because
/// BffdLess is a strict total order over ids, merging the per-table sorted
/// runs yields exactly the sequence a single global sort would — the
/// parallelism is invisible in the output.
std::vector<FlatFragmentId> SortBffdOrder(
    const std::vector<FragmentInfo>& frags, ThreadPool* pool) {
  // Bucket ids by table, preserving ascending id order within each bucket.
  std::vector<TableId> tables;
  for (const FragmentInfo& f : frags) tables.push_back(f.table);
  std::sort(tables.begin(), tables.end());
  tables.erase(std::unique(tables.begin(), tables.end()), tables.end());
  std::vector<std::vector<FlatFragmentId>> buckets(tables.size());
  for (FlatFragmentId id = 0; id < frags.size(); ++id) {
    const std::size_t b = static_cast<std::size_t>(
        std::lower_bound(tables.begin(), tables.end(), frags[id].table) -
        tables.begin());
    buckets[b].push_back(id);
  }

  ParallelFor(pool, buckets.size(), [&](std::size_t b) {
    std::sort(buckets[b].begin(), buckets[b].end(), BffdLess{&frags});
  });

  // k-way merge: repeatedly take the comparator-least head. Table counts
  // are small, so a linear head scan beats heap bookkeeping.
  std::vector<FlatFragmentId> order;
  order.reserve(frags.size());
  std::vector<std::size_t> head(buckets.size(), 0);
  const BffdLess less{&frags};
  while (order.size() < frags.size()) {
    std::size_t best = buckets.size();
    for (std::size_t b = 0; b < buckets.size(); ++b) {
      if (head[b] >= buckets[b].size()) continue;
      if (best == buckets.size() ||
          less(buckets[b][head[b]], buckets[best][head[best]])) {
        best = b;
      }
    }
    order.push_back(buckets[best][head[best]++]);
  }
  return order;
}

/// Segment (max) tree over per-node remaining capacity answering "first
/// node with remaining >= need" in O(log nodes) — the first-fit scan of
/// BFFD without the linear walk. Slots beyond the live node count hold
/// remaining capacity 0 and are excluded by the `limit` bound, so they can
/// never be chosen (not even by zero-sized fragments).
class FirstFitTree {
 public:
  void AddNode(TupleCount disk) {
    if (n_ == cap_) Grow();
    Set(n_, disk);
    ++n_;
  }

  void Consume(NodeId node, TupleCount size) {
    NASHDB_DCHECK(node < n_ && Get(node) >= size);
    Set(node, Get(node) - size);
  }

  /// First node id in [lo, node count) with remaining >= need, or
  /// kInvalidNode when none exists.
  NodeId FindFirstFit(NodeId lo, TupleCount need) const {
    if (lo >= n_) return kInvalidNode;
    const std::size_t found = Find(1, 0, cap_, lo, need);
    return found == kNotFound ? kInvalidNode : static_cast<NodeId>(found);
  }

 private:
  static constexpr std::size_t kNotFound = ~std::size_t{0};

  TupleCount Get(std::size_t leaf) const { return tree_[cap_ + leaf]; }

  void Set(std::size_t leaf, TupleCount v) {
    std::size_t i = cap_ + leaf;
    tree_[i] = v;
    for (i /= 2; i >= 1; i /= 2) {
      tree_[i] = std::max(tree_[2 * i], tree_[2 * i + 1]);
    }
  }

  void Grow() {
    const std::size_t new_cap = cap_ == 0 ? 1 : cap_ * 2;
    std::vector<TupleCount> old_leaves;
    old_leaves.reserve(n_);
    for (std::size_t i = 0; i < n_; ++i) old_leaves.push_back(Get(i));
    cap_ = new_cap;
    tree_.assign(2 * cap_, 0);
    for (std::size_t i = 0; i < n_; ++i) tree_[cap_ + i] = old_leaves[i];
    for (std::size_t i = cap_ - 1; i >= 1; --i) {
      tree_[i] = std::max(tree_[2 * i], tree_[2 * i + 1]);
    }
  }

  /// First leaf >= lo within [node_lo, node_hi) whose value >= need; the
  /// live-node bound is enforced by the caller (leaves >= n_ hold 0 and
  /// need can be 0 only for zero-sized fragments, which FindFirstFit
  /// screens via `lo >= n_` plus the explicit n_ cap below).
  std::size_t Find(std::size_t node, std::size_t node_lo, std::size_t node_hi,
                   std::size_t lo, TupleCount need) const {
    if (node_hi <= lo || tree_[node] < need || node_lo >= n_) return kNotFound;
    if (node_hi - node_lo == 1) return node_lo;
    const std::size_t mid = node_lo + (node_hi - node_lo) / 2;
    const std::size_t left = Find(2 * node, node_lo, mid, lo, need);
    if (left != kNotFound) return left;
    return Find(2 * node + 1, mid, node_hi, lo, need);
  }

  std::size_t n_ = 0;    ///< live nodes
  std::size_t cap_ = 0;  ///< power-of-two leaf capacity
  std::vector<TupleCount> tree_;
};

}  // namespace

Result<ClusterConfig> PackReplicasBffd(const ReplicationParams& params,
                                       std::vector<FragmentInfo> fragments,
                                       ThreadPool* pool) {
  metrics::ScopedTimerMs timer("transition.pack_ms");
  if (params.node_disk == 0) {
    return Status::InvalidArgument("node_disk must be positive");
  }
  for (const FragmentInfo& f : fragments) {
    if (f.size() > params.node_disk) {
      return Status::InvalidArgument(
          "fragment larger than node disk capacity");
    }
  }

  ClusterConfig config(params, std::move(fragments));

  const std::vector<FlatFragmentId> order =
      SortBffdOrder(config.fragments(), pool);

  // First fit with a capacity tree: semantically the historical scan
  // "first node where Fits && !Holds, else AddNode", with Fits answered by
  // the tree (remaining >= size <=> Fits) and Holds screened by resuming
  // the search past a node that already stores the fragment.
  FirstFitTree tree;
  for (FlatFragmentId fid : order) {
    const FragmentInfo& f = config.fragment(fid);
    for (std::size_t r = 0; r < f.replicas; ++r) {
      NodeId lo = 0;
      NodeId node = kInvalidNode;
      while (true) {
        node = tree.FindFirstFit(lo, f.size());
        if (node == kInvalidNode) break;
        if (!config.Holds(node, fid)) break;
        lo = node + 1;  // holds a replica already: keep scanning upward
      }
      if (node == kInvalidNode) {
        node = config.AddNode();
        tree.AddNode(params.node_disk);
      }
      config.Place(node, fid);
      tree.Consume(node, f.size());
    }
  }
  return config;
}

Result<ClusterConfig> BuildConfigFromPlacement(
    const ReplicationParams& params, std::vector<FragmentInfo> fragments,
    const std::vector<std::vector<FlatFragmentId>>& node_fragments) {
  if (params.node_disk == 0) {
    return Status::InvalidArgument("node_disk must be positive");
  }
  // Recompute achieved replica counts.
  std::vector<std::size_t> achieved(fragments.size(), 0);
  for (const auto& frags : node_fragments) {
    for (FlatFragmentId fid : frags) {
      if (fid >= fragments.size()) {
        return Status::InvalidArgument("placement references unknown fragment");
      }
      ++achieved[fid];
    }
  }
  for (std::size_t i = 0; i < fragments.size(); ++i) {
    fragments[i].replicas = achieved[i];
  }

  ClusterConfig config(params, std::move(fragments));
  for (const auto& frags : node_fragments) {
    const NodeId node = config.AddNode();
    TupleCount used = 0;
    for (FlatFragmentId fid : frags) {
      if (config.Holds(node, fid)) {
        return Status::InvalidArgument("duplicate replica on one node");
      }
      used += config.fragment(fid).size();
      if (used > params.node_disk) {
        return Status::InvalidArgument("node over capacity");
      }
      config.Place(node, fid);
    }
  }
  return config;
}

}  // namespace nashdb
