#include "replication/packer.h"

#include <algorithm>
#include <numeric>

namespace nashdb {

Result<ClusterConfig> PackReplicasBffd(const ReplicationParams& params,
                                       std::vector<FragmentInfo> fragments) {
  if (params.node_disk == 0) {
    return Status::InvalidArgument("node_disk must be positive");
  }
  for (const FragmentInfo& f : fragments) {
    if (f.size() > params.node_disk) {
      return Status::InvalidArgument(
          "fragment larger than node disk capacity");
    }
  }

  ClusterConfig config(params, std::move(fragments));

  // Process fragments in decreasing order of replica count (ties broken by
  // decreasing size for tighter packing, then by id for determinism).
  std::vector<FlatFragmentId> order(config.fragments().size());
  std::iota(order.begin(), order.end(), 0);
  std::sort(order.begin(), order.end(),
            [&](FlatFragmentId a, FlatFragmentId b) {
              const FragmentInfo& fa = config.fragment(a);
              const FragmentInfo& fb = config.fragment(b);
              if (fa.replicas != fb.replicas) return fa.replicas > fb.replicas;
              if (fa.size() != fb.size()) return fa.size() > fb.size();
              return a < b;
            });

  for (FlatFragmentId fid : order) {
    const FragmentInfo& f = config.fragment(fid);
    for (std::size_t r = 0; r < f.replicas; ++r) {
      bool placed = false;
      for (NodeId node = 0; node < config.node_count(); ++node) {
        if (config.Fits(node, f.size()) && !config.Holds(node, fid)) {
          config.Place(node, fid);
          placed = true;
          break;
        }
      }
      if (!placed) {
        const NodeId node = config.AddNode();
        config.Place(node, fid);
      }
    }
  }
  return config;
}

Result<ClusterConfig> BuildConfigFromPlacement(
    const ReplicationParams& params, std::vector<FragmentInfo> fragments,
    const std::vector<std::vector<FlatFragmentId>>& node_fragments) {
  if (params.node_disk == 0) {
    return Status::InvalidArgument("node_disk must be positive");
  }
  // Recompute achieved replica counts.
  std::vector<std::size_t> achieved(fragments.size(), 0);
  for (const auto& frags : node_fragments) {
    for (FlatFragmentId fid : frags) {
      if (fid >= fragments.size()) {
        return Status::InvalidArgument("placement references unknown fragment");
      }
      ++achieved[fid];
    }
  }
  for (std::size_t i = 0; i < fragments.size(); ++i) {
    fragments[i].replicas = achieved[i];
  }

  ClusterConfig config(params, std::move(fragments));
  for (const auto& frags : node_fragments) {
    const NodeId node = config.AddNode();
    TupleCount used = 0;
    for (FlatFragmentId fid : frags) {
      if (config.Holds(node, fid)) {
        return Status::InvalidArgument("duplicate replica on one node");
      }
      used += config.fragment(fid).size();
      if (used > params.node_disk) {
        return Status::InvalidArgument("node over capacity");
      }
      config.Place(node, fid);
    }
  }
  return config;
}

}  // namespace nashdb
