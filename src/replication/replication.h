#ifndef NASHDB_REPLICATION_REPLICATION_H_
#define NASHDB_REPLICATION_REPLICATION_H_

#include <cstddef>
#include <vector>

#include "common/types.h"

namespace nashdb {

/// Economic parameters of the (uniform) cluster nodes: each node rents for
/// `node_cost` per unit time and holds `node_disk` tuples of local storage
/// (paper §6). The expected cost of storing a replica of fragment f is
/// C(f) = Size(f) * node_cost / node_disk.
struct ReplicationParams {
  Money node_cost = 1.0;
  TupleCount node_disk = 0;
  /// |W|: number of scans in the value-estimation window. The expected
  /// income of a replica is I(f) = |W| * Value(f) / Replicas(f).
  std::size_t window_scans = 0;
  /// Floor on replicas per fragment. The pure economic model (Eq. 9)
  /// assigns zero replicas to fragments earning no income; a real
  /// deployment must keep data available, so the engine uses 1. Set to 0
  /// to reproduce the paper's Nash-equilibrium conditions exactly.
  std::size_t min_replicas = 1;
  /// Optional cap on replicas per fragment (0 = unbounded).
  std::size_t max_replicas = 0;
};

/// One fragment as seen by the replication/placement machinery: a flat
/// cross-table handle with its windowed value (Eq. 3) and the chosen
/// replica count.
struct FragmentInfo {
  TableId table = 0;
  FragmentId index_in_table = 0;
  TupleRange range;
  /// Value(f): summed averaged tuple value over the fragment.
  Money value = 0.0;
  /// Replicas(f): decided by IdealReplicas (filled by DecideReplication).
  std::size_t replicas = 0;

  TupleCount size() const { return range.size(); }
};

/// C(f): expected storage cost of one replica of a fragment of `size`
/// tuples.
Money ReplicaCost(TupleCount size, const ReplicationParams& params);

/// I(f): expected income of one replica of a fragment with windowed value
/// `value` when `replicas` copies exist.
Money ReplicaIncome(Money value, std::size_t replicas,
                    const ReplicationParams& params);

/// Eq. 9: the largest replica count at which owning a replica is still
/// (weakly) profitable:
///   Ideal(f) = floor( |W| * Value(f) * Disk / (Size(f) * Cost) ),
/// clamped to [min_replicas, max_replicas].
std::size_t IdealReplicas(Money value, TupleCount size,
                          const ReplicationParams& params);

/// Fills in FragmentInfo::replicas for every fragment.
void DecideReplication(const ReplicationParams& params,
                       std::vector<FragmentInfo>* fragments);

}  // namespace nashdb

#endif  // NASHDB_REPLICATION_REPLICATION_H_
