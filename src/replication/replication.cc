#include "replication/replication.h"

#include <cmath>

#include "common/logging.h"

namespace nashdb {

Money ReplicaCost(TupleCount size, const ReplicationParams& params) {
  NASHDB_DCHECK(params.node_disk > 0);
  return static_cast<Money>(size) * params.node_cost /
         static_cast<Money>(params.node_disk);
}

Money ReplicaIncome(Money value, std::size_t replicas,
                    const ReplicationParams& params) {
  NASHDB_DCHECK(replicas > 0);
  return static_cast<Money>(params.window_scans) * value /
         static_cast<Money>(replicas);
}

std::size_t IdealReplicas(Money value, TupleCount size,
                          const ReplicationParams& params) {
  NASHDB_CHECK_GT(params.node_disk, 0u);
  NASHDB_CHECK_GT(params.node_cost, 0.0);
  NASHDB_CHECK_GT(size, 0u);

  const Money raw = static_cast<Money>(params.window_scans) * value *
                    static_cast<Money>(params.node_disk) /
                    (static_cast<Money>(size) * params.node_cost);
  std::size_t ideal = raw <= 0.0 ? 0 : static_cast<std::size_t>(raw);
  if (ideal < params.min_replicas) ideal = params.min_replicas;
  if (params.max_replicas > 0 && ideal > params.max_replicas) {
    ideal = params.max_replicas;
  }
  return ideal;
}

void DecideReplication(const ReplicationParams& params,
                       std::vector<FragmentInfo>* fragments) {
  for (FragmentInfo& f : *fragments) {
    f.replicas = IdealReplicas(f.value, f.size(), params);
  }
}

}  // namespace nashdb
