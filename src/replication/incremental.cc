#include "replication/incremental.h"

#include <algorithm>
#include <numeric>

#include "common/logging.h"
#include "replication/packer.h"

namespace nashdb {
namespace {

// Sorted, coalesced holdings of one previous node, for coverage queries.
struct NodeIntervals {
  struct Interval {
    TableId table;
    TupleRange range;
  };
  std::vector<Interval> intervals;

  // True if [range) of `table` lies entirely inside this node's data.
  bool Covers(TableId table, const TupleRange& range) const {
    for (const Interval& iv : intervals) {
      if (iv.table != table) continue;
      if (iv.range.start <= range.start && range.end <= iv.range.end) {
        return true;
      }
      // Intervals are sorted; once past the range we can stop.
      if (iv.table == table && iv.range.start >= range.end) break;
    }
    return false;
  }
};

NodeIntervals IntervalsOf(const ClusterConfig& config, NodeId node) {
  NodeIntervals out;
  for (FlatFragmentId fid : config.NodeFragments(node)) {
    const FragmentInfo& f = config.fragment(fid);
    out.intervals.push_back(NodeIntervals::Interval{f.table, f.range});
  }
  std::sort(out.intervals.begin(), out.intervals.end(),
            [](const NodeIntervals::Interval& a,
               const NodeIntervals::Interval& b) {
              if (a.table != b.table) return a.table < b.table;
              return a.range.start < b.range.start;
            });
  // Coalesce adjacent ranges so coverage spanning old fragment boundaries
  // is recognized.
  std::vector<NodeIntervals::Interval> merged;
  for (const auto& iv : out.intervals) {
    if (!merged.empty() && merged.back().table == iv.table &&
        merged.back().range.end >= iv.range.start) {
      merged.back().range.end =
          std::max(merged.back().range.end, iv.range.end);
    } else {
      merged.push_back(iv);
    }
  }
  out.intervals = std::move(merged);
  return out;
}

}  // namespace

Result<ClusterConfig> RepackIncremental(const ReplicationParams& params,
                                        std::vector<FragmentInfo> fragments,
                                        const ClusterConfig* previous,
                                        const IncrementalOptions& options) {
  if (params.node_disk == 0) {
    return Status::InvalidArgument("node_disk must be positive");
  }
  for (const FragmentInfo& f : fragments) {
    if (f.size() > params.node_disk) {
      return Status::InvalidArgument(
          "fragment larger than node disk capacity");
    }
  }

  const std::size_t prev_nodes =
      previous == nullptr ? 0 : previous->node_count();
  const auto unavailable = [&](std::size_t m) {
    return m < prev_nodes && m < options.unavailable_prev_nodes.size() &&
           options.unavailable_prev_nodes[m];
  };
  // Pinned = partitioned: alive but unroutable (a node both marked dead
  // and pinned is treated as dead).
  const auto pinned = [&](std::size_t m) {
    return m < prev_nodes && m < options.pinned_prev_nodes.size() &&
           options.pinned_prev_nodes[m] && !unavailable(m);
  };
  // Crashed previous nodes contribute no coverage and take no placements:
  // they finish the repack empty, which decommissions them in elastic
  // mode. Pinned (partitioned) nodes also contribute no *routable*
  // coverage — their copies must not satisfy replica targets — but keep
  // their placements (pre-seeded below).
  std::vector<NodeIntervals> coverage;
  coverage.reserve(prev_nodes);
  for (NodeId m = 0; m < prev_nodes; ++m) {
    coverage.push_back(unavailable(m) || pinned(m)
                           ? NodeIntervals()
                           : IntervalsOf(*previous, m));
  }

  // Working placement state. Slots beyond prev_nodes are fresh nodes.
  std::vector<std::vector<FlatFragmentId>> node_frags(prev_nodes);
  std::vector<TupleCount> node_used(prev_nodes, 0);
  std::vector<std::vector<bool>> holds;  // per fragment: node bitmap

  auto ensure_holds = [&](std::size_t nodes) {
    for (auto& h : holds) h.resize(nodes, false);
  };
  holds.assign(fragments.size(), std::vector<bool>(prev_nodes, false));

  // Pre-seed pinned nodes with their previous placements (carried by
  // fragment index — see the pinned_prev_nodes contract). These copies
  // exist and are billed, but do not count toward routable replica
  // targets tracked in `achieved`.
  std::vector<std::size_t> pinned_copies(fragments.size(), 0);
  for (NodeId m = 0; m < prev_nodes; ++m) {
    if (!pinned(m)) continue;
    for (FlatFragmentId fid : previous->NodeFragments(m)) {
      NASHDB_CHECK_LT(fid, fragments.size())
          << "pinned_prev_nodes requires fragments identical to previous's";
      node_frags[m].push_back(fid);
      node_used[m] += fragments[fid].size();
      holds[fid][m] = true;
      ++pinned_copies[fid];
    }
  }

  // Hot fragments first, so they keep their previous homes even if the
  // cluster is shrinking.
  std::vector<std::size_t> order(fragments.size());
  std::iota(order.begin(), order.end(), 0);
  std::sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) {
    if (fragments[a].replicas != fragments[b].replicas) {
      return fragments[a].replicas > fragments[b].replicas;
    }
    if (fragments[a].size() != fragments[b].size()) {
      return fragments[a].size() > fragments[b].size();
    }
    return a < b;
  });

  auto place = [&](std::size_t idx, std::size_t node) {
    node_frags[node].push_back(static_cast<FlatFragmentId>(idx));
    node_used[node] += fragments[idx].size();
    holds[idx][node] = true;
  };

  // Places up to `count` additional replicas of fragment `idx`; returns
  // how many were placed. Preference order: previous nodes already
  // holding the data (emptiest first, so later fragments stay placeable),
  // then any existing node first-fit, then fresh nodes if allowed.
  auto place_replicas = [&](std::size_t idx, std::size_t count)
      -> std::size_t {
    const FragmentInfo& f = fragments[idx];
    std::size_t placed = 0;

    std::vector<std::size_t> coverers;
    for (std::size_t m = 0; m < prev_nodes; ++m) {
      if (coverage[m].Covers(f.table, f.range)) coverers.push_back(m);
    }
    std::sort(coverers.begin(), coverers.end(),
              [&](std::size_t a, std::size_t b) {
                return node_used[a] < node_used[b];
              });
    for (std::size_t m : coverers) {
      if (placed == count) break;
      if (holds[idx][m] || node_used[m] + f.size() > params.node_disk) {
        continue;
      }
      place(idx, m);
      ++placed;
    }
    // Spread over existing nodes, emptiest first: contiguous fragments of
    // one table then land on different disks, so a range scan
    // parallelizes instead of serializing behind a single node.
    while (placed < count) {
      std::size_t best = node_frags.size();
      for (std::size_t m = 0; m < node_frags.size(); ++m) {
        if (unavailable(m) || pinned(m) || holds[idx][m] ||
            node_used[m] + f.size() > params.node_disk) {
          continue;
        }
        if (best == node_frags.size() || node_used[m] < node_used[best]) {
          best = m;
        }
      }
      if (best == node_frags.size()) break;
      place(idx, best);
      ++placed;
    }
    while (placed < count &&
           (options.max_nodes == 0 ||
            node_frags.size() < options.max_nodes)) {
      node_frags.emplace_back();
      node_used.push_back(0);
      ensure_holds(node_frags.size());
      place(idx, node_frags.size() - 1);
      ++placed;
    }
    return placed;
  };

  // Phase 1: one copy of every fragment — base coverage must never lose
  // space to extra replicas of hot data. Zero-replica fragments (pure
  // Eq. 9 mode, min_replicas == 0) are deliberately unplaced.
  std::vector<std::size_t> achieved(fragments.size(), 0);
  for (std::size_t idx : order) {
    if (fragments[idx].replicas == 0) continue;
    achieved[idx] = place_replicas(idx, 1);
    if (achieved[idx] == 0) {
      return Status::ResourceExhausted(
          "cluster too small to hold even one copy of every fragment");
    }
  }
  // Phase 2: the remaining (extra) replicas, hottest first.
  for (std::size_t idx : order) {
    if (fragments[idx].replicas <= achieved[idx]) continue;
    achieved[idx] +=
        place_replicas(idx, fragments[idx].replicas - achieved[idx]);
  }
  for (std::size_t idx = 0; idx < fragments.size(); ++idx) {
    // Total copies in the configuration: routable placements plus the
    // copies stranded behind partitions on pinned nodes.
    fragments[idx].replicas = achieved[idx] + pinned_copies[idx];
  }

  // Elastic consolidation: when demand fell, incremental reuse can leave
  // many half-empty rented nodes behind. Evacuate the emptiest nodes into
  // the others' free space until the cluster is within one node of its
  // volume minimum — the transition planner prices the moves, and the
  // saved rent recurs every period.
  if (options.max_nodes == 0) {
    TupleCount volume = 0;
    for (TupleCount u : node_used) volume += u;
    const std::size_t target =
        static_cast<std::size_t>((volume + params.node_disk - 1) /
                                 params.node_disk) +
        1;
    std::size_t live = 0;
    for (const auto& frags : node_frags) {
      if (!frags.empty()) ++live;
    }
    while (live > target) {
      // Emptiest non-empty node. Pinned nodes are never evacuated: they
      // stay rented regardless, so consolidation buys nothing there.
      std::size_t victim = node_frags.size();
      for (std::size_t m = 0; m < node_frags.size(); ++m) {
        if (node_frags[m].empty() || pinned(m)) continue;
        if (victim == node_frags.size() ||
            node_used[m] < node_used[victim]) {
          victim = m;
        }
      }
      if (victim == node_frags.size()) break;
      // Tentatively evacuate; roll back if any fragment has no home.
      bool ok = true;
      std::vector<std::pair<FlatFragmentId, std::size_t>> moves;
      for (FlatFragmentId fid : node_frags[victim]) {
        std::size_t dest = node_frags.size();
        for (std::size_t m = 0; m < node_frags.size(); ++m) {
          if (m == victim || node_frags[m].empty() || pinned(m)) continue;
          if (holds[fid][m] ||
              node_used[m] + fragments[fid].size() > params.node_disk) {
            continue;
          }
          if (dest == node_frags.size() || node_used[m] < node_used[dest]) {
            dest = m;
          }
        }
        if (dest == node_frags.size()) {
          ok = false;
          break;
        }
        moves.emplace_back(fid, dest);
        node_used[dest] += fragments[fid].size();  // reserve
        holds[fid][dest] = true;
      }
      if (!ok) {
        for (const auto& [fid, dest] : moves) {
          node_used[dest] -= fragments[fid].size();
          holds[fid][dest] = false;
        }
        break;  // cannot shrink further
      }
      for (const auto& [fid, dest] : moves) {
        node_frags[dest].push_back(fid);
        holds[fid][victim] = false;
      }
      node_used[victim] = 0;
      node_frags[victim].clear();
      --live;
    }
  }

  // Elastic clusters decommission empty nodes; fixed-size clusters keep
  // them (their rent is the baseline's tuning knob). Fixed-size clusters
  // are also padded up to max_nodes.
  std::vector<std::vector<FlatFragmentId>> final_nodes;
  if (options.max_nodes == 0) {
    for (auto& frags : node_frags) {
      if (!frags.empty()) final_nodes.push_back(std::move(frags));
    }
    if (final_nodes.empty()) final_nodes.emplace_back();
  } else {
    final_nodes = std::move(node_frags);
    final_nodes.resize(options.max_nodes);
  }

  return BuildConfigFromPlacement(params, std::move(fragments), final_nodes);
}

Result<ClusterConfig> PlanEmergencyRepair(
    const ClusterConfig& config, const std::vector<bool>& node_dead,
    const std::vector<bool>& node_partitioned) {
  IncrementalOptions options;
  options.max_nodes = 0;  // elastic: replacements may be provisioned
  options.unavailable_prev_nodes = node_dead;
  options.pinned_prev_nodes = node_partitioned;
  // Same target fragments and replica counts; only the placement changes.
  // Live replicas are reused via interval containment, so the repair
  // transition copies exactly the lost replicas (plus any consolidation).
  // Partitioned nodes are pinned: kept intact and billed while routable
  // copies are restored elsewhere.
  return RepackIncremental(config.params(), config.fragments(), &config,
                           options);
}

}  // namespace nashdb
