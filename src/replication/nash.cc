#include "replication/nash.h"

#include <sstream>

namespace nashdb {
namespace {

// Tolerance for profit comparisons: incomes are products/quotients of
// doubles, so strict zero comparisons would flag spurious violations.
constexpr Money kEps = 1e-9;

Money MarginalProfitHeld(const ClusterConfig& config, FlatFragmentId fid) {
  const FragmentInfo& f = config.fragment(fid);
  return ReplicaIncome(f.value, f.replicas, config.params()) -
         ReplicaCost(f.size(), config.params());
}

Money MarginalProfitAdded(const ClusterConfig& config, FlatFragmentId fid) {
  const FragmentInfo& f = config.fragment(fid);
  return ReplicaIncome(f.value, f.replicas + 1, config.params()) -
         ReplicaCost(f.size(), config.params());
}

}  // namespace

Money NodeProfit(const ClusterConfig& config, NodeId node) {
  Money profit = 0.0;
  for (FlatFragmentId fid : config.NodeFragments(node)) {
    profit += MarginalProfitHeld(config, fid);
  }
  return profit;
}

NashReport CheckNashEquilibrium(const ClusterConfig& config,
                                bool exempt_min_replicas) {
  NashReport report;
  const auto& params = config.params();

  auto fail = [&report](const std::string& why) {
    report.is_equilibrium = false;
    if (report.violation.empty()) report.violation = why;
  };

  // Fragments whose replica count was forced above the economic ideal by
  // the availability floor; exempt from "dropping/swapping it would gain"
  // audits when requested (the floor is a policy, not a node's choice).
  auto floor_pinned = [&](FlatFragmentId fid) {
    const FragmentInfo& f = config.fragment(fid);
    return exempt_min_replicas && f.replicas <= params.min_replicas &&
           IdealReplicas(f.value, f.size(),
                         ReplicationParams{params.node_cost, params.node_disk,
                                           params.window_scans,
                                           /*min_replicas=*/0,
                                           params.max_replicas}) < f.replicas;
  };

  for (NodeId node = 0; node < config.node_count(); ++node) {
    report.total_profit += NodeProfit(config, node);
  }

  // Condition 1: every held replica is (weakly) profitable.
  for (FlatFragmentId fid = 0; fid < config.fragments().size(); ++fid) {
    const FragmentInfo& f = config.fragment(fid);
    if (f.replicas == 0) continue;
    if (floor_pinned(fid)) continue;  // policy floor, not an economic choice
    if (MarginalProfitHeld(config, fid) < -kEps) {
      std::ostringstream os;
      os << "condition 1 violated: dropping a replica of fragment " << fid
         << " gains " << -MarginalProfitHeld(config, fid);
      fail(os.str());
    }
  }

  // Condition 2: adding one more replica of any fragment is unprofitable
  // (unless the count was capped below the ideal by max_replicas).
  for (FlatFragmentId fid = 0; fid < config.fragments().size(); ++fid) {
    const FragmentInfo& f = config.fragment(fid);
    if (params.max_replicas > 0 && f.replicas >= params.max_replicas) {
      continue;
    }
    if (MarginalProfitAdded(config, fid) > kEps) {
      std::ostringstream os;
      os << "condition 2 violated: adding a replica of fragment " << fid
         << " gains " << MarginalProfitAdded(config, fid);
      fail(os.str());
    }
  }

  // Condition 3: no profitable swap. A swap drops a held replica (losing
  // its non-negative margin, by condition 1) and adds a new one (gaining a
  // non-positive margin, by condition 2), so any violation is already
  // reported above; we still audit the strongest swap pair directly.
  for (NodeId node = 0; node < config.node_count(); ++node) {
    for (FlatFragmentId held : config.NodeFragments(node)) {
      if (floor_pinned(held)) continue;  // the floor replica cannot move
      const Money drop_loss = MarginalProfitHeld(config, held);
      for (FlatFragmentId other = 0; other < config.fragments().size();
           ++other) {
        if (other == held || config.Holds(node, other)) continue;
        const Money add_gain = MarginalProfitAdded(config, other);
        if (add_gain - drop_loss > kEps) {
          std::ostringstream os;
          os << "condition 3 violated: node " << node << " swaps " << held
             << " for " << other << " gaining " << (add_gain - drop_loss);
          fail(os.str());
        }
      }
    }
  }

  // Condition 4: no entrant can profit. The best possible entrant holds
  // only replicas with positive marginal profit at Replicas(f)+1; by
  // condition 2 there are none.
  for (FlatFragmentId fid = 0; fid < config.fragments().size(); ++fid) {
    if (MarginalProfitAdded(config, fid) > kEps) {
      std::ostringstream os;
      os << "condition 4 violated: an entrant profits from fragment " << fid;
      fail(os.str());
    }
  }

  return report;
}

}  // namespace nashdb
