#include "common/stats.h"

#include <algorithm>
#include <cmath>

namespace nashdb {

void RunningStat::Add(double x) {
  if (n_ == 0) {
    min_ = max_ = x;
  } else {
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }
  ++n_;
  sum_ += x;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(n_);
  m2_ += delta * (x - mean_);
}

double RunningStat::stddev() const { return std::sqrt(variance()); }

void PercentileTracker::Add(double x) {
  MutexLock lock(mu_);
  samples_.push_back(x);
  sorted_ = false;
}

std::size_t PercentileTracker::count() const {
  MutexLock lock(mu_);
  return samples_.size();
}

double PercentileTracker::mean() const {
  MutexLock lock(mu_);
  if (samples_.empty()) return 0.0;
  double s = 0.0;
  for (double x : samples_) s += x;
  return s / static_cast<double>(samples_.size());
}

double PercentileTracker::Percentile(double p) const {
  MutexLock lock(mu_);
  if (samples_.empty()) return 0.0;
  if (!sorted_) {
    std::sort(samples_.begin(), samples_.end());
    sorted_ = true;
  }
  if (p <= 0.0) return samples_.front();
  if (p >= 100.0) return samples_.back();
  const double rank = p / 100.0 * static_cast<double>(samples_.size() - 1);
  const std::size_t lo = static_cast<std::size_t>(rank);
  const double frac = rank - static_cast<double>(lo);
  if (lo + 1 >= samples_.size()) return samples_.back();
  return samples_[lo] * (1.0 - frac) + samples_[lo + 1] * frac;
}

double SumSquaredDeviations(const std::vector<double>& xs) {
  if (xs.empty()) return 0.0;
  double mean = 0.0;
  for (double x : xs) mean += x;
  mean /= static_cast<double>(xs.size());
  double ssd = 0.0;
  for (double x : xs) ssd += (x - mean) * (x - mean);
  return ssd;
}

}  // namespace nashdb
