#include "common/stats.h"

#include <algorithm>
#include <cmath>

namespace nashdb {

void RunningStat::Add(double x) {
  if (n_ == 0) {
    min_ = max_ = x;
  } else {
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }
  ++n_;
  sum_ += x;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(n_);
  m2_ += delta * (x - mean_);
}

double RunningStat::stddev() const { return std::sqrt(variance()); }

void PercentileTracker::Add(double x) {
  MutexLock lock(mu_);
  samples_.push_back(x);
  sorted_ = false;
}

std::size_t PercentileTracker::count() const {
  MutexLock lock(mu_);
  return samples_.size();
}

double PercentileTracker::mean() const {
  MutexLock lock(mu_);
  if (samples_.empty()) return 0.0;
  double s = 0.0;
  for (double x : samples_) s += x;
  return s / static_cast<double>(samples_.size());
}

double PercentileTracker::Percentile(double p) const {
  MutexLock lock(mu_);
  if (samples_.empty()) return 0.0;
  if (!sorted_) {
    std::sort(samples_.begin(), samples_.end());
    sorted_ = true;
  }
  if (p <= 0.0) return samples_.front();
  if (p >= 100.0) return samples_.back();
  const double rank = p / 100.0 * static_cast<double>(samples_.size() - 1);
  const std::size_t lo = static_cast<std::size_t>(rank);
  const double frac = rank - static_cast<double>(lo);
  if (lo + 1 >= samples_.size()) return samples_.back();
  return samples_[lo] * (1.0 - frac) + samples_[lo + 1] * frac;
}

void LogHistogram::Add(double x) {
  std::size_t i = 0;
  if (x > kMinValue) {
    i = 1 + static_cast<std::size_t>(std::log(x / kMinValue) /
                                     std::log(kGrowth));
    i = std::min(i, kBuckets - 1);
  }
  ++buckets_[i];
  ++count_;
  sum_ += x;
  max_ = std::max(max_, x);
}

double LogHistogram::Percentile(double p) const {
  if (count_ == 0) return 0.0;
  const double rank =
      std::clamp(p, 0.0, 100.0) / 100.0 * static_cast<double>(count_ - 1);
  std::uint64_t cumulative = 0;
  std::size_t top_occupied = 0;
  for (std::size_t i = 0; i < kBuckets; ++i) {
    if (buckets_[i] > 0) top_occupied = i;
  }
  for (std::size_t i = 0; i < kBuckets; ++i) {
    cumulative += buckets_[i];
    if (static_cast<double>(cumulative) > rank) {
      // The top occupied bucket's upper edge would overshoot the true
      // maximum; max_ is exact there.
      if (i == top_occupied) return max_;
      if (i == 0) return kMinValue;
      return kMinValue * std::pow(kGrowth, static_cast<double>(i));
    }
  }
  return max_;
}

double SumSquaredDeviations(const std::vector<double>& xs) {
  if (xs.empty()) return 0.0;
  double mean = 0.0;
  for (double x : xs) mean += x;
  mean /= static_cast<double>(xs.size());
  double ssd = 0.0;
  for (double x : xs) ssd += (x - mean) * (x - mean);
  return ssd;
}

}  // namespace nashdb
