#include "common/query.h"

namespace nashdb {

Query MakeQuery(QueryId id, Money price,
                const std::vector<std::pair<TableId, TupleRange>>& ranges) {
  Query q;
  q.id = id;
  q.price = price;

  TupleCount total = 0;
  for (const auto& [table, range] : ranges) {
    (void)table;
    total += range.size();
  }

  q.scans.reserve(ranges.size());
  for (const auto& [table, range] : ranges) {
    if (range.empty()) continue;
    Scan s;
    s.table = table;
    s.range = range;
    s.price = total == 0
                  ? 0.0
                  : price * static_cast<Money>(range.size()) /
                        static_cast<Money>(total);
    q.scans.push_back(s);
  }
  return q;
}

}  // namespace nashdb
