#ifndef NASHDB_COMMON_TYPES_H_
#define NASHDB_COMMON_TYPES_H_

#include <cstdint>
#include <limits>

namespace nashdb {

/// Index of a tuple within the clustered (physical) ordering of a table.
/// All ranges in NashDB are half-open: a scan or fragment covering
/// [start, end) touches the tuples start, start+1, ..., end-1, matching the
/// paper's convention that Start() is inclusive and End() is exclusive.
using TupleIndex = std::uint64_t;

/// A count of tuples (the Size() of a scan or fragment).
using TupleCount = std::uint64_t;

/// Monetary amounts. The paper reports prices in 1/100ths of a cent; we
/// store money as a double-precision number of cents, so 1/100 cent = 0.01.
using Money = double;

/// Identifier of a table within a database schema.
using TableId = std::uint32_t;

/// Identifier of a fragment within a fragmentation scheme.
using FragmentId = std::uint32_t;

/// Identifier of a cluster node.
using NodeId = std::uint32_t;

/// Identifier of a query.
using QueryId = std::uint64_t;

/// Simulated time, in seconds.
using SimTime = double;

/// Sentinel for "no node".
inline constexpr NodeId kInvalidNode = std::numeric_limits<NodeId>::max();

/// Sentinel for "no fragment".
inline constexpr FragmentId kInvalidFragment =
    std::numeric_limits<FragmentId>::max();

/// A half-open range of tuple indices [start, end).
struct TupleRange {
  TupleIndex start = 0;
  TupleIndex end = 0;

  TupleCount size() const { return end - start; }
  bool empty() const { return end <= start; }

  /// True if `x` lies inside this range.
  bool Contains(TupleIndex x) const { return x >= start && x < end; }

  /// True if the two ranges share at least one tuple.
  bool Overlaps(const TupleRange& other) const {
    return start < other.end && other.start < end;
  }

  /// The intersection of two ranges (empty range if disjoint).
  TupleRange Intersect(const TupleRange& other) const {
    TupleIndex s = start > other.start ? start : other.start;
    TupleIndex e = end < other.end ? end : other.end;
    if (e < s) e = s;
    return TupleRange{s, e};
  }

  friend bool operator==(const TupleRange&, const TupleRange&) = default;
};

}  // namespace nashdb

#endif  // NASHDB_COMMON_TYPES_H_
