#ifndef NASHDB_COMMON_THREAD_ANNOTATIONS_H_
#define NASHDB_COMMON_THREAD_ANNOTATIONS_H_

/// Clang thread-safety-analysis attribute macros (Abseil style, see
/// https://clang.llvm.org/docs/ThreadSafetyAnalysis.html). On Clang with
/// `-Wthread-safety` the compiler statically verifies that every access to
/// a `NASHDB_GUARDED_BY(mu)` field happens while `mu` is held and that
/// functions honor their `NASHDB_REQUIRES` / `NASHDB_EXCLUDES` contracts.
/// On other compilers every macro expands to nothing, so the annotations
/// are pure documentation there.
///
/// The analysis only sees lock acquisitions through annotated primitives —
/// raw std::mutex + std::lock_guard are invisible to it — so annotated
/// code locks through the nashdb::Mutex / MutexLock / CondVar wrappers in
/// common/mutex.h. Conventions: annotate the *field* with GUARDED_BY, the
/// *function contract* with REQUIRES/EXCLUDES, and keep lock scopes as
/// RAII guards (the analysis understands scoped capabilities natively).

#if defined(__clang__) && (!defined(SWIG))
#define NASHDB_THREAD_ANNOTATION_(x) __attribute__((x))
#else
#define NASHDB_THREAD_ANNOTATION_(x)  // no-op off Clang
#endif

/// Declares a class to be a lockable capability (e.g. a mutex wrapper).
#define NASHDB_CAPABILITY(x) NASHDB_THREAD_ANNOTATION_(capability(x))

/// Declares an RAII class that acquires a capability in its constructor
/// and releases it in its destructor.
#define NASHDB_SCOPED_CAPABILITY NASHDB_THREAD_ANNOTATION_(scoped_lockable)

/// The annotated field may only be read or written while the given
/// capability is held.
#define NASHDB_GUARDED_BY(x) NASHDB_THREAD_ANNOTATION_(guarded_by(x))

/// The pointed-to data (not the pointer itself) is guarded by `x`.
#define NASHDB_PT_GUARDED_BY(x) NASHDB_THREAD_ANNOTATION_(pt_guarded_by(x))

/// The function may only be called while holding the given capabilities.
#define NASHDB_REQUIRES(...) \
  NASHDB_THREAD_ANNOTATION_(requires_capability(__VA_ARGS__))

/// Shared (reader) version of NASHDB_REQUIRES.
#define NASHDB_REQUIRES_SHARED(...) \
  NASHDB_THREAD_ANNOTATION_(requires_shared_capability(__VA_ARGS__))

/// The function acquires the capability and does not release it.
#define NASHDB_ACQUIRE(...) \
  NASHDB_THREAD_ANNOTATION_(acquire_capability(__VA_ARGS__))

#define NASHDB_ACQUIRE_SHARED(...) \
  NASHDB_THREAD_ANNOTATION_(acquire_shared_capability(__VA_ARGS__))

/// The function releases the capability (which must be held on entry).
#define NASHDB_RELEASE(...) \
  NASHDB_THREAD_ANNOTATION_(release_capability(__VA_ARGS__))

#define NASHDB_RELEASE_SHARED(...) \
  NASHDB_THREAD_ANNOTATION_(release_shared_capability(__VA_ARGS__))

/// The function acquires the capability iff it returns `ret`.
#define NASHDB_TRY_ACQUIRE(ret, ...) \
  NASHDB_THREAD_ANNOTATION_(try_acquire_capability(ret, __VA_ARGS__))

/// The function must NOT be called while holding the given capabilities
/// (guards against self-deadlock on non-reentrant mutexes).
#define NASHDB_EXCLUDES(...) \
  NASHDB_THREAD_ANNOTATION_(locks_excluded(__VA_ARGS__))

/// The function returns a reference to the capability guarding it.
#define NASHDB_RETURN_CAPABILITY(x) \
  NASHDB_THREAD_ANNOTATION_(lock_returned(x))

/// Escape hatch: the function intentionally bypasses the analysis (e.g.
/// init/teardown paths that are single-threaded by construction).
#define NASHDB_NO_THREAD_SAFETY_ANALYSIS \
  NASHDB_THREAD_ANNOTATION_(no_thread_safety_analysis)

/// Marks a steady-state query-path function (DESIGN.md §10/§14): the body
/// must be allocation-free — no `new`, no make_unique/make_shared, no
/// std::string construction, no container growth calls. The contract is
/// enforced by tools/nashdb_lint.py (rule `hot-alloc`); deliberate appends
/// into caller-reserved, capacity-reusing buffers carry a
/// `// NASHDB_LINT_ALLOW(hot-alloc): reason` at the call site. On GCC and
/// Clang the marker doubles as the `hot` optimization attribute.
#if defined(__GNUC__) || defined(__clang__)
#define NASHDB_HOT __attribute__((hot))
#else
#define NASHDB_HOT
#endif

#endif  // NASHDB_COMMON_THREAD_ANNOTATIONS_H_
