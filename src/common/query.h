#ifndef NASHDB_COMMON_QUERY_H_
#define NASHDB_COMMON_QUERY_H_

#include <vector>

#include "common/logging.h"
#include "common/types.h"

namespace nashdb {

/// A range scan issued by a query plan: a contiguous block of tuples
/// [range.start, range.end) read from `table`, carrying the share of the
/// query's price assigned to it by Eq. 1 of the paper.
struct Scan {
  TableId table = 0;
  TupleRange range;
  /// Price(s_i): this scan's share of the owning query's price.
  Money price = 0.0;

  TupleCount size() const { return range.size(); }

  /// Per-tuple income of the scan: Price(s) / Size(s). This is the quantity
  /// stored in the value estimation tree.
  Money NormalizedPrice() const {
    NASHDB_DCHECK(!range.empty());
    return price / static_cast<Money>(range.size());
  }
};

/// A query: a priced set of range scans. The priority of a query is the
/// price the user is willing to pay for it (paper §2); higher-priced queries
/// receive proportionally more replicas and thus better performance.
struct Query {
  QueryId id = 0;
  Money price = 0.0;
  std::vector<Scan> scans;

  /// Total tuples read across all scans of this query.
  TupleCount TotalTuples() const {
    TupleCount n = 0;
    for (const Scan& s : scans) n += s.size();
    return n;
  }
};

/// Distributes `price` over `ranges` proportionally to their sizes (Eq. 1:
/// Price(s_i) = Size(s_i) / sum_j Size(s_j) * Price(q)) and returns the
/// assembled query.
Query MakeQuery(QueryId id, Money price,
                const std::vector<std::pair<TableId, TupleRange>>& ranges);

}  // namespace nashdb

#endif  // NASHDB_COMMON_QUERY_H_
