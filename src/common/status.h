#ifndef NASHDB_COMMON_STATUS_H_
#define NASHDB_COMMON_STATUS_H_

#include <string>
#include <utility>
#include <variant>

#include "common/logging.h"

namespace nashdb {

/// Error categories for fallible library operations. Library code does not
/// throw exceptions (Google style); it returns Status / Result<T> instead,
/// following the RocksDB/Arrow idiom.
enum class StatusCode {
  kOk = 0,
  kInvalidArgument,
  kNotFound,
  kOutOfRange,
  kFailedPrecondition,
  kResourceExhausted,
  kInternal,
};

/// The result of a fallible operation: either OK or a code plus message.
///
/// [[nodiscard]]: silently dropping a Status is exactly the bug class the
/// retry/repair paths of PR 3 made reachable, so discarding one is a
/// compile error (the build adds -Werror=unused-result). Call sites that
/// genuinely want to ignore an error say so with a `(void)` cast — and own
/// the consequences in review.
class [[nodiscard]] Status {
 public:
  /// Constructs an OK status.
  Status() = default;

  Status(StatusCode code, std::string message)
      : code_(code), message_(std::move(message)) {}

  static Status OK() { return Status(); }
  static Status InvalidArgument(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  static Status NotFound(std::string msg) {
    return Status(StatusCode::kNotFound, std::move(msg));
  }
  static Status OutOfRange(std::string msg) {
    return Status(StatusCode::kOutOfRange, std::move(msg));
  }
  static Status FailedPrecondition(std::string msg) {
    return Status(StatusCode::kFailedPrecondition, std::move(msg));
  }
  static Status ResourceExhausted(std::string msg) {
    return Status(StatusCode::kResourceExhausted, std::move(msg));
  }
  static Status Internal(std::string msg) {
    return Status(StatusCode::kInternal, std::move(msg));
  }

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  /// Human-readable rendering, e.g. "InvalidArgument: window must be > 0".
  std::string ToString() const;

 private:
  StatusCode code_ = StatusCode::kOk;
  std::string message_;
};

/// Either a value of type T or an error Status. Mirrors arrow::Result.
/// [[nodiscard]] for the same reason as Status: a dropped Result is a
/// dropped error.
template <typename T>
class [[nodiscard]] Result {
 public:
  /// Implicit construction from a value (the common, successful path).
  Result(T value) : v_(std::move(value)) {}  // NOLINT(runtime/explicit)

  /// Implicit construction from a non-OK status.
  Result(Status status) : v_(std::move(status)) {  // NOLINT(runtime/explicit)
    NASHDB_CHECK(!std::get<Status>(v_).ok())
        << "Result constructed from OK status";
  }

  bool ok() const { return std::holds_alternative<T>(v_); }

  const Status& status() const {
    static const Status kOk;
    return ok() ? kOk : std::get<Status>(v_);
  }

  /// Returns the contained value; CHECK-fails if this holds an error.
  const T& value() const& {
    NASHDB_CHECK(ok()) << status().ToString();
    return std::get<T>(v_);
  }
  T& value() & {
    NASHDB_CHECK(ok()) << status().ToString();
    return std::get<T>(v_);
  }
  T&& value() && {
    NASHDB_CHECK(ok()) << status().ToString();
    return std::get<T>(std::move(v_));
  }

  const T& operator*() const& { return value(); }
  T& operator*() & { return value(); }
  const T* operator->() const { return &value(); }
  T* operator->() { return &value(); }

 private:
  std::variant<T, Status> v_;
};

/// Propagates a non-OK status out of the enclosing function.
#define NASHDB_RETURN_IF_ERROR(expr)          \
  do {                                        \
    ::nashdb::Status _st = (expr);            \
    if (!_st.ok()) return _st;                \
  } while (false)

#define NASHDB_STATUS_CONCAT_INNER_(a, b) a##b
#define NASHDB_STATUS_CONCAT_(a, b) NASHDB_STATUS_CONCAT_INNER_(a, b)

/// Evaluates `rexpr` (a Result<T> expression); on error returns the Status
/// out of the enclosing function, otherwise moves the value into `lhs`:
///
///   NASHDB_ASSIGN_OR_RETURN(ClusterConfig config,
///                           RepackIncremental(params, frags, prev));
///
/// `lhs` may declare a new variable or name an existing one. Replaces the
/// hand-rolled `if (!r.ok()) return r.status();` stanzas that used to
/// guard every Result call site.
#define NASHDB_ASSIGN_OR_RETURN(lhs, rexpr)                              \
  NASHDB_ASSIGN_OR_RETURN_IMPL_(                                         \
      NASHDB_STATUS_CONCAT_(_nashdb_result_, __LINE__), lhs, rexpr)

#define NASHDB_ASSIGN_OR_RETURN_IMPL_(result, lhs, rexpr) \
  auto result = (rexpr);                                  \
  if (!result.ok()) return result.status();               \
  lhs = std::move(result).value()

}  // namespace nashdb

#endif  // NASHDB_COMMON_STATUS_H_
