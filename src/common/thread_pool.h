#ifndef NASHDB_COMMON_THREAD_POOL_H_
#define NASHDB_COMMON_THREAD_POOL_H_

#include <cstddef>
#include <deque>
#include <functional>
#include <thread>
#include <vector>

#include "common/mutex.h"
#include "common/thread_annotations.h"

namespace nashdb {

/// A small fixed-size worker pool for the reconfiguration pipeline's
/// fork/join parallelism (per-table Refragment calls, DP row blocks).
/// Tasks run FIFO; the pool makes no fairness or priority promises beyond
/// that. A pool with zero workers is a valid degenerate pool: Schedule()
/// runs the task inline on the calling thread, so callers never need a
/// serial special case.
///
/// Ownership model (see DESIGN.md "Performance architecture"): whoever
/// coordinates a pipeline owns the pool (NashDbSystem owns one for its
/// BuildConfig; benches and tests own theirs); algorithm objects such as
/// OptimalFragmenter only borrow a non-owning pointer and must not outlive
/// uses of it. There is deliberately no process-global pool.
class ThreadPool {
 public:
  /// Spawns exactly `num_threads` workers (0 is the inline degenerate
  /// pool). Use DefaultThreads() to size a pool to the hardware.
  explicit ThreadPool(std::size_t num_threads);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  std::size_t num_threads() const { return workers_.size(); }

  /// Enqueues `fn` for execution on a worker (inline when the pool has no
  /// workers). Fire-and-forget: completion and exceptions are the
  /// submitter's business — `fn` must not throw (ParallelFor wraps user
  /// functions to capture exceptions).
  void Schedule(std::function<void()> fn) NASHDB_EXCLUDES(mu_);

  /// True when the calling thread is one of this pool's workers. Used by
  /// ParallelFor to degrade nested calls to inline execution instead of
  /// deadlocking on the pool's own queue.
  bool OnWorkerThread() const;

  /// std::thread::hardware_concurrency with a floor of 1.
  static std::size_t DefaultThreads();

 private:
  void WorkerLoop() NASHDB_EXCLUDES(mu_);

  mutable Mutex mu_;
  CondVar cv_;
  std::deque<std::function<void()>> queue_ NASHDB_GUARDED_BY(mu_);
  bool stop_ NASHDB_GUARDED_BY(mu_) = false;
  /// Written only by the constructor, before any worker exists; read-only
  /// afterwards, so unguarded reads are race-free.
  std::vector<std::thread> workers_;
};

/// Runs fn(i) for every i in [0, n), partitioned into contiguous blocks of
/// `grain` indices claimed dynamically by the pool's workers and by the
/// calling thread (which always participates). Blocks until every index has
/// run. The first exception thrown by `fn` is rethrown here after all
/// in-flight work drains; remaining unclaimed blocks are abandoned.
///
/// Degrades to a plain serial loop when `pool` is null, has fewer than two
/// workers, n fits a single block, or the caller is itself one of `pool`'s
/// workers (nested parallelism runs inline rather than deadlocking).
void ParallelFor(ThreadPool* pool, std::size_t n,
                 const std::function<void(std::size_t)>& fn,
                 std::size_t grain = 1);

}  // namespace nashdb

#endif  // NASHDB_COMMON_THREAD_POOL_H_
