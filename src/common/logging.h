#ifndef NASHDB_COMMON_LOGGING_H_
#define NASHDB_COMMON_LOGGING_H_

#include <cstdio>
#include <cstdlib>
#include <sstream>
#include <string>

namespace nashdb {
namespace internal_logging {

/// Terminates the process after printing `msg`, annotated with the source
/// location of the failed check. Used by the CHECK macros below; never call
/// directly.
[[noreturn]] inline void FailCheck(const char* file, int line,
                                   const char* expr, const std::string& msg) {
  std::fprintf(stderr, "[nashdb] CHECK failed at %s:%d: %s %s\n", file, line,
               expr, msg.c_str());
  std::abort();
}

/// Stream-collecting helper so CHECK macros can accept `<< "context"`.
class CheckMessage {
 public:
  CheckMessage(const char* file, int line, const char* expr)
      : file_(file), line_(line), expr_(expr) {}

  [[noreturn]] ~CheckMessage() { FailCheck(file_, line_, expr_, out_.str()); }

  template <typename T>
  CheckMessage& operator<<(const T& v) {
    out_ << v;
    return *this;
  }

 private:
  const char* file_;
  int line_;
  const char* expr_;
  std::ostringstream out_;
};

}  // namespace internal_logging
}  // namespace nashdb

/// Always-on invariant check. Use for conditions whose violation means the
/// library has a bug and cannot continue (Google style: crash on programmer
/// error, Status for runtime error).
#define NASHDB_CHECK(cond)                                             \
  while (!(cond))                                                      \
  ::nashdb::internal_logging::CheckMessage(__FILE__, __LINE__, #cond)

#define NASHDB_CHECK_OP(a, op, b) NASHDB_CHECK((a)op(b))
#define NASHDB_CHECK_EQ(a, b) NASHDB_CHECK_OP(a, ==, b)
#define NASHDB_CHECK_NE(a, b) NASHDB_CHECK_OP(a, !=, b)
#define NASHDB_CHECK_LT(a, b) NASHDB_CHECK_OP(a, <, b)
#define NASHDB_CHECK_LE(a, b) NASHDB_CHECK_OP(a, <=, b)
#define NASHDB_CHECK_GT(a, b) NASHDB_CHECK_OP(a, >, b)
#define NASHDB_CHECK_GE(a, b) NASHDB_CHECK_OP(a, >=, b)

/// Debug-only check; compiled out in NDEBUG builds.
#ifdef NDEBUG
#define NASHDB_DCHECK(cond) \
  while (false) ::nashdb::internal_logging::CheckMessage(__FILE__, __LINE__, #cond)
#else
#define NASHDB_DCHECK(cond) NASHDB_CHECK(cond)
#endif

#endif  // NASHDB_COMMON_LOGGING_H_
