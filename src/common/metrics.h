#ifndef NASHDB_COMMON_METRICS_H_
#define NASHDB_COMMON_METRICS_H_

#include <atomic>
#include <chrono>
#include <cstddef>
#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <span>
#include <string>
#include <string_view>
#include <vector>

#include "common/mutex.h"
#include "common/thread_annotations.h"

namespace nashdb {
namespace metrics {

/// Lightweight runtime observability for the reconfiguration pipeline.
///
/// Design goals, in priority order:
///   1. Near-zero overhead when disabled: every recording entry point is a
///      single relaxed atomic load + branch, no clock reads, no
///      allocation, no lock.
///   2. Thread-safe when enabled: the reconfiguration pipeline is
///      multithreaded (per-table refragmentation, DP-layer blocks), so
///      all metric mutation is lock-free atomics; only name registration
///      takes a (shared) mutex.
///   3. Machine-readable: Registry::SnapshotJson() serializes every
///      metric plus the per-reconfiguration trace records, so a bench or
///      RunWorkload can persist the whole pipeline state next to its
///      results.
///
/// The registry is global and disabled by default. RunWorkload enables it
/// for the duration of a run when DriverOptions::collect_metrics is set
/// and stores the snapshot on RunResult::metrics_json. Metric names are
/// namespaced by pipeline stage: value.* (estimation), frag.*,
/// replication.*, transition.*, routing.*, sim.* — the full list lives in
/// DESIGN.md "Observability".

/// Monotonic event counter.
class Counter {
 public:
  void Inc(std::uint64_t n = 1) { v_.fetch_add(n, std::memory_order_relaxed); }
  std::uint64_t value() const { return v_.load(std::memory_order_relaxed); }
  void Reset() { v_.store(0, std::memory_order_relaxed); }

 private:
  std::atomic<std::uint64_t> v_{0};
};

/// Last-write-wins instantaneous value.
class Gauge {
 public:
  void Set(double v) { v_.store(v, std::memory_order_relaxed); }
  double value() const { return v_.load(std::memory_order_relaxed); }

 private:
  std::atomic<double> v_{0.0};
};

/// Fixed-bucket histogram: `bounds` are ascending inclusive upper bounds;
/// one implicit overflow bucket catches everything above the last bound.
/// Observe() is lock-free (per-bucket atomic counters; sum/min/max via CAS
/// loops), so pool workers may record concurrently.
class Histogram {
 public:
  explicit Histogram(std::vector<double> bounds);

  void Observe(double x);

  std::uint64_t count() const { return count_.load(std::memory_order_relaxed); }
  double sum() const { return sum_.load(std::memory_order_relaxed); }
  /// 0.0 when empty.
  double min() const;
  double max() const;
  double mean() const;
  const std::vector<double>& bounds() const { return bounds_; }
  /// bounds().size() + 1 entries; the last is the overflow bucket.
  std::vector<std::uint64_t> bucket_counts() const;

 private:
  std::vector<double> bounds_;
  std::unique_ptr<std::atomic<std::uint64_t>[]> buckets_;
  std::atomic<std::uint64_t> count_{0};
  std::atomic<double> sum_{0.0};
  /// +/-infinity sentinels until the first sample; accessors mask them.
  std::atomic<double> min_;
  std::atomic<double> max_;
};

/// Structured record of one reconfiguration round, covering every pipeline
/// stage end to end. NashDbSystem::BuildConfig fills the estimation /
/// fragmentation / replication sections and appends the record; the
/// simulation driver annotates the transition section and round totals.
/// Serialized under "reconfigurations" in the JSON snapshot.
struct ReconfigTrace {
  std::uint64_t round = 0;   ///< 0-based sequence number within the run.
  double sim_time_s = 0.0;   ///< Simulated time of the round (driver).
  double total_ms = 0.0;     ///< Wall time: BuildConfig + plan + apply.
  bool applied = true;       ///< False when adaptive mode skipped it.

  // -- §4 value estimation ------------------------------------------------
  std::size_t window_scans = 0;     ///< Scans in the window at build time.
  std::size_t active_tables = 0;    ///< Tables with >= 1 windowed scan.
  std::size_t tree_nodes = 0;       ///< Distinct scan endpoints, all trees.
  int tree_height_max = 0;          ///< Tallest AVL tree.
  std::size_t estimator_bytes = 0;  ///< Trees + window buffer footprint.

  // -- §5 fragmentation ---------------------------------------------------
  std::size_t tables_fragmented = 0;
  std::size_t fragments = 0;        ///< Emitted fragments (post disk carve).
  double scheme_error = 0.0;        ///< Summed Eq. 4 error over tables.
  double frag_ms = 0.0;             ///< Wall time of the parallel fan-out.
  std::size_t frag_dc_runs = 0;     ///< OptimalFragmenter D&C solves.
  std::size_t frag_quadratic_runs = 0;  ///< O(k m^2) reference solves.
  std::size_t threads = 1;          ///< Resolved reconfig_threads.
  double thread_utilization = 0.0;  ///< sum(task ms) / (threads * wall ms).

  // -- §6 replication & packing -------------------------------------------
  std::size_t ideal_replicas = 0;   ///< Sum of Eq. 9 ideals (pre-hysteresis).
  std::size_t placed_replicas = 0;  ///< Sum of replica counts actually packed.
  std::size_t nodes = 0;            ///< Provisioned node count.
  double disk_fill = 0.0;           ///< Stored tuples / (nodes * disk).
  double replication_ms = 0.0;      ///< Eq. 9 + hysteresis + packing wall.
  bool nash_equilibrium = false;    ///< CheckNashEquilibrium verdict.
  std::string nash_violation;       ///< First violated condition, if any.

  // -- §7 transition planning (driver-annotated) --------------------------
  std::uint64_t planned_transfer_tuples = 0;
  std::size_t nodes_added = 0;
  std::size_t nodes_removed = 0;
  double plan_ms = 0.0;             ///< Matching solve wall time.
  bool plan_used_sparse = false;    ///< Sparse SSP vs dense Hungarian.
  std::size_t plan_graph_edges = 0; ///< Positive-overlap edges priced.
  std::uint64_t plan_solver_iterations = 0;  ///< Sparse Dijkstra settles.
};

/// The global metric store. All accessors hand out pointers that stay
/// valid until the next Reset(); call sites that cannot tolerate that use
/// the free functions below, which re-resolve by name on every call.
class Registry {
 public:
  static Registry& Global();

  void Enable() { enabled_.store(true, std::memory_order_relaxed); }
  void Disable() { enabled_.store(false, std::memory_order_relaxed); }
  bool enabled() const { return enabled_.load(std::memory_order_relaxed); }

  /// Finds or creates the named metric. While the registry is disabled
  /// these return a shared no-op instance and allocate nothing, so
  /// instrumented code may call them unconditionally.
  Counter* counter(std::string_view name) NASHDB_EXCLUDES(mu_);
  Gauge* gauge(std::string_view name) NASHDB_EXCLUDES(mu_);
  /// `bounds` is consulted only on first creation; empty means the default
  /// geometric decade buckets (1e-3 .. 1e6).
  Histogram* histogram(std::string_view name,
                       std::span<const double> bounds = {})
      NASHDB_EXCLUDES(mu_);

  /// Value of a counter by name; 0 when absent. Used to diff counters
  /// around a pipeline stage.
  std::uint64_t CounterValue(std::string_view name) const NASHDB_EXCLUDES(mu_);

  /// Appends one reconfiguration trace (no-op while disabled).
  void RecordReconfig(ReconfigTrace trace) NASHDB_EXCLUDES(trace_mu_);
  /// Mutates the most recent trace under the trace lock; returns false
  /// when there is none (e.g. a baseline system that records no traces).
  bool AnnotateLastReconfig(const std::function<void(ReconfigTrace&)>& fn)
      NASHDB_EXCLUDES(trace_mu_);
  std::size_t reconfig_count() const NASHDB_EXCLUDES(trace_mu_);

  /// Number of registered metrics (all kinds). Exposed for the
  /// disabled-mode zero-allocation tests.
  std::size_t metric_count() const NASHDB_EXCLUDES(mu_);

  /// Drops every metric and trace. Invalidates previously returned metric
  /// pointers; the free-function API below is always safe.
  void Reset() NASHDB_EXCLUDES(mu_, trace_mu_);

  /// Serializes counters, gauges, histograms, and reconfiguration traces
  /// as one JSON object.
  std::string SnapshotJson() const NASHDB_EXCLUDES(mu_, trace_mu_);

 private:
  Registry() = default;

  std::atomic<bool> enabled_{false};
  /// Guards metric *registration* (map lookup/insert); mutation of the
  /// returned metric objects is lock-free atomics. Reads take the shared
  /// side so concurrent pool workers resolving names do not serialize.
  mutable SharedMutex mu_;
  std::map<std::string, std::unique_ptr<Counter>, std::less<>> counters_
      NASHDB_GUARDED_BY(mu_);
  std::map<std::string, std::unique_ptr<Gauge>, std::less<>> gauges_
      NASHDB_GUARDED_BY(mu_);
  std::map<std::string, std::unique_ptr<Histogram>, std::less<>> histograms_
      NASHDB_GUARDED_BY(mu_);
  mutable Mutex trace_mu_;
  std::vector<ReconfigTrace> traces_ NASHDB_GUARDED_BY(trace_mu_);
};

/// True when the global registry is collecting.
inline bool Enabled() { return Registry::Global().enabled(); }

/// Recording entry points. Disabled mode: one relaxed load + branch.
void Count(std::string_view name, std::uint64_t n = 1);
void SetGauge(std::string_view name, double value);
void Observe(std::string_view name, double value);

/// RAII wall-clock timer recording elapsed milliseconds into the named
/// histogram on destruction. The enabled check happens at construction;
/// when disabled no clock is read.
class ScopedTimerMs {
 public:
  explicit ScopedTimerMs(const char* histogram_name);
  ~ScopedTimerMs();

  ScopedTimerMs(const ScopedTimerMs&) = delete;
  ScopedTimerMs& operator=(const ScopedTimerMs&) = delete;

  /// Elapsed so far (0.0 when the timer is disarmed).
  double ElapsedMs() const;

 private:
  const char* name_;
  bool armed_;
  std::chrono::steady_clock::time_point start_;
};

}  // namespace metrics
}  // namespace nashdb

#endif  // NASHDB_COMMON_METRICS_H_
