#ifndef NASHDB_COMMON_RANDOM_H_
#define NASHDB_COMMON_RANDOM_H_

#include <cstdint>
#include <vector>

#include "common/logging.h"

namespace nashdb {

/// Deterministic, seedable PRNG (xoshiro256** seeded via SplitMix64).
/// Every stochastic component in NashDB takes an explicit seed so that all
/// experiments are exactly reproducible; std::mt19937 is avoided because its
/// distributions are not portable across standard library implementations.
class Rng {
 public:
  explicit Rng(std::uint64_t seed) { Seed(seed); }

  /// Re-seeds the generator. The four xoshiro lanes are filled by iterating
  /// SplitMix64 over `seed`, the construction recommended by the xoshiro
  /// authors.
  void Seed(std::uint64_t seed);

  /// Next raw 64-bit value.
  std::uint64_t NextU64();

  /// Uniform in [0, n). Requires n > 0. Uses Lemire's multiply-shift
  /// rejection method to avoid modulo bias.
  std::uint64_t Uniform(std::uint64_t n);

  /// Uniform in [lo, hi). Requires lo < hi.
  std::uint64_t UniformRange(std::uint64_t lo, std::uint64_t hi) {
    NASHDB_DCHECK(lo < hi);
    return lo + Uniform(hi - lo);
  }

  /// Uniform double in [0, 1).
  double NextDouble();

  /// True with probability p.
  bool Bernoulli(double p) { return NextDouble() < p; }

  /// Geometric-style draw: returns the smallest k >= 0 such that k
  /// consecutive Bernoulli(p) failures occurred, capped at `cap`.
  /// Used by the Bernoulli workload's "95% hit the last GB" pattern.
  std::uint64_t Geometric(double p, std::uint64_t cap);

  /// Standard normal via Marsaglia polar method.
  double Gaussian();

  /// Zipf-distributed rank in [0, n) with exponent `s` (s > 0). Uses the
  /// classic inverse-CDF over precomputed harmonic weights when n is small;
  /// for large n uses rejection sampling (Devroye).
  std::uint64_t Zipf(std::uint64_t n, double s);

  /// Fisher–Yates shuffle.
  template <typename T>
  void Shuffle(std::vector<T>* v) {
    for (std::size_t i = v->size(); i > 1; --i) {
      std::size_t j = static_cast<std::size_t>(Uniform(i));
      std::swap((*v)[i - 1], (*v)[j]);
    }
  }

 private:
  std::uint64_t s_[4];
};

}  // namespace nashdb

#endif  // NASHDB_COMMON_RANDOM_H_
