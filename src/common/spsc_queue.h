#ifndef NASHDB_COMMON_SPSC_QUEUE_H_
#define NASHDB_COMMON_SPSC_QUEUE_H_

#include <atomic>
#include <cstddef>
#include <new>
#include <utility>
#include <vector>

#include "common/logging.h"
#include "common/thread_annotations.h"

namespace nashdb {

/// Bounded lock-free single-producer / single-consumer ring buffer
/// (DESIGN.md §11). Exactly one thread may call the producer side
/// (TryPush) and exactly one thread the consumer side (TryPop) at a
/// time; under that contract every operation is wait-free.
///
/// Layout follows the classic Lamport queue with two refinements:
///  - head and tail live on their own cache lines (alignas(64)) so the
///    producer's stores never false-share with the consumer's, and
///  - each side keeps a cached copy of the other side's index and only
///    reloads it (acquire) when the cached value says the queue looks
///    full/empty. In the steady state a push or pop touches one shared
///    atomic, not two.
///
/// Indices increase monotonically and are reduced modulo the capacity
/// (a power of two) on access, so a full queue (head - tail == capacity)
/// is distinguishable from an empty one (head == tail) without wasting
/// a slot.
template <typename T>
class SpscQueue {
 public:
  /// Capacity is rounded up to the next power of two (minimum 2).
  explicit SpscQueue(std::size_t capacity) {
    std::size_t cap = 2;
    while (cap < capacity) cap <<= 1;
    mask_ = cap - 1;
    slots_.resize(cap);
  }

  SpscQueue(const SpscQueue&) = delete;
  SpscQueue& operator=(const SpscQueue&) = delete;

  std::size_t capacity() const { return mask_ + 1; }

  /// Producer side. Returns false when the queue is full.
  NASHDB_HOT bool TryPush(T value) {
    const std::size_t head = head_.load(std::memory_order_relaxed);
    if (head - cached_tail_ > mask_) {
      cached_tail_ = tail_.load(std::memory_order_acquire);
      if (head - cached_tail_ > mask_) return false;
    }
    slots_[head & mask_] = std::move(value);
    head_.store(head + 1, std::memory_order_release);
    return true;
  }

  /// Consumer side. Returns false when the queue is empty.
  NASHDB_HOT bool TryPop(T* out) {
    const std::size_t tail = tail_.load(std::memory_order_relaxed);
    if (tail == cached_head_) {
      cached_head_ = head_.load(std::memory_order_acquire);
      if (tail == cached_head_) return false;
    }
    *out = std::move(slots_[tail & mask_]);
    tail_.store(tail + 1, std::memory_order_release);
    return true;
  }

  /// Producer side: pushes up to `max` elements from `in` with a single
  /// pair of index accesses — the bulk admission the batched data plane
  /// uses so a block of scans costs one acquire, not one per element.
  /// Returns how many were pushed (0 when the queue is full).
  NASHDB_HOT std::size_t TryPushBulk(const T* in, std::size_t max) {
    const std::size_t head = head_.load(std::memory_order_relaxed);
    std::size_t free = (mask_ + 1) - (head - cached_tail_);
    if (free < max) {
      // The stale tail view cannot satisfy the whole chunk; one refresh
      // either frees the difference or proves the queue really is short.
      cached_tail_ = tail_.load(std::memory_order_acquire);
      free = (mask_ + 1) - (head - cached_tail_);
      if (free == 0) return 0;
    }
    if (free > max) free = max;
    for (std::size_t i = 0; i < free; ++i) {
      slots_[(head + i) & mask_] = in[i];
    }
    head_.store(head + free, std::memory_order_release);
    return free;
  }

  /// Consumer side: pops up to `max` elements into `out` with a single
  /// pair of index accesses — the bulk drain the shard loop uses so a
  /// deep queue costs one acquire, not one per element.
  NASHDB_HOT std::size_t TryPopBulk(T* out, std::size_t max) {
    const std::size_t tail = tail_.load(std::memory_order_relaxed);
    if (tail == cached_head_) {
      cached_head_ = head_.load(std::memory_order_acquire);
    }
    std::size_t avail = cached_head_ - tail;
    if (avail == 0) return 0;
    if (avail > max) avail = max;
    for (std::size_t i = 0; i < avail; ++i) {
      out[i] = std::move(slots_[(tail + i) & mask_]);
    }
    tail_.store(tail + avail, std::memory_order_release);
    return avail;
  }

  /// Approximate occupancy; exact only when called from the consumer
  /// thread with the producer quiescent (or vice versa).
  std::size_t SizeApprox() const {
    const std::size_t head = head_.load(std::memory_order_acquire);
    const std::size_t tail = tail_.load(std::memory_order_acquire);
    return head - tail;
  }

 private:
  std::vector<T> slots_;
  std::size_t mask_ = 0;

  alignas(64) std::atomic<std::size_t> head_{0};  // producer-owned
  alignas(64) std::size_t cached_tail_ = 0;       // producer's view of tail_
  alignas(64) std::atomic<std::size_t> tail_{0};  // consumer-owned
  alignas(64) std::size_t cached_head_ = 0;       // consumer's view of head_
};

}  // namespace nashdb

#endif  // NASHDB_COMMON_SPSC_QUEUE_H_
