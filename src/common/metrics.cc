#include "common/metrics.h"

#include <algorithm>
#include <cstdio>
#include <limits>

#include "common/logging.h"

namespace nashdb {
namespace metrics {

namespace {

/// Relaxed CAS add for atomic<double> (fetch_add on floating atomics is
/// C++20 but not yet universal across the toolchains we target).
void AtomicAdd(std::atomic<double>* a, double x) {
  double cur = a->load(std::memory_order_relaxed);
  while (!a->compare_exchange_weak(cur, cur + x, std::memory_order_relaxed)) {
  }
}

void AtomicMin(std::atomic<double>* a, double x) {
  double cur = a->load(std::memory_order_relaxed);
  while (x < cur &&
         !a->compare_exchange_weak(cur, x, std::memory_order_relaxed)) {
  }
}

void AtomicMax(std::atomic<double>* a, double x) {
  double cur = a->load(std::memory_order_relaxed);
  while (x > cur &&
         !a->compare_exchange_weak(cur, x, std::memory_order_relaxed)) {
  }
}

/// Decade buckets covering microseconds-to-minutes timers, tuple counts,
/// and spans alike; callers with a natural scale pass explicit bounds.
const std::vector<double>& DefaultBounds() {
  static const std::vector<double> kBounds = {1e-3, 1e-2, 1e-1, 1,   10,
                                              100,  1e3,  1e4,  1e5, 1e6};
  return kBounds;
}

// ---- JSON writing -----------------------------------------------------

void AppendEscaped(std::string* out, std::string_view s) {
  out->push_back('"');
  for (char c : s) {
    switch (c) {
      case '"':
        out->append("\\\"");
        break;
      case '\\':
        out->append("\\\\");
        break;
      case '\n':
        out->append("\\n");
        break;
      case '\t':
        out->append("\\t");
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out->append(buf);
        } else {
          out->push_back(c);
        }
    }
  }
  out->push_back('"');
}

void AppendDouble(std::string* out, double v) {
  char buf[40];
  std::snprintf(buf, sizeof(buf), "%.6g", v);
  out->append(buf);
}

void AppendU64(std::string* out, std::uint64_t v) {
  out->append(std::to_string(v));
}

void AppendKey(std::string* out, std::string_view key) {
  AppendEscaped(out, key);
  out->append(": ");
}

void AppendTrace(std::string* out, const ReconfigTrace& t) {
  out->append("{");
  AppendKey(out, "round");
  AppendU64(out, t.round);
  out->append(", ");
  AppendKey(out, "sim_time_s");
  AppendDouble(out, t.sim_time_s);
  out->append(", ");
  AppendKey(out, "total_ms");
  AppendDouble(out, t.total_ms);
  out->append(", ");
  AppendKey(out, "applied");
  out->append(t.applied ? "true" : "false");

  out->append(", ");
  AppendKey(out, "estimation");
  out->append("{");
  AppendKey(out, "window_scans");
  AppendU64(out, t.window_scans);
  out->append(", ");
  AppendKey(out, "active_tables");
  AppendU64(out, t.active_tables);
  out->append(", ");
  AppendKey(out, "tree_nodes");
  AppendU64(out, t.tree_nodes);
  out->append(", ");
  AppendKey(out, "tree_height_max");
  AppendU64(out, static_cast<std::uint64_t>(t.tree_height_max));
  out->append(", ");
  AppendKey(out, "estimator_bytes");
  AppendU64(out, t.estimator_bytes);
  out->append("}");

  out->append(", ");
  AppendKey(out, "fragmentation");
  out->append("{");
  AppendKey(out, "tables");
  AppendU64(out, t.tables_fragmented);
  out->append(", ");
  AppendKey(out, "fragments");
  AppendU64(out, t.fragments);
  out->append(", ");
  AppendKey(out, "scheme_error");
  AppendDouble(out, t.scheme_error);
  out->append(", ");
  AppendKey(out, "wall_ms");
  AppendDouble(out, t.frag_ms);
  out->append(", ");
  AppendKey(out, "dc_runs");
  AppendU64(out, t.frag_dc_runs);
  out->append(", ");
  AppendKey(out, "quadratic_runs");
  AppendU64(out, t.frag_quadratic_runs);
  out->append(", ");
  AppendKey(out, "threads");
  AppendU64(out, t.threads);
  out->append(", ");
  AppendKey(out, "thread_utilization");
  AppendDouble(out, t.thread_utilization);
  out->append("}");

  out->append(", ");
  AppendKey(out, "replication");
  out->append("{");
  AppendKey(out, "ideal_replicas");
  AppendU64(out, t.ideal_replicas);
  out->append(", ");
  AppendKey(out, "placed_replicas");
  AppendU64(out, t.placed_replicas);
  out->append(", ");
  AppendKey(out, "nodes");
  AppendU64(out, t.nodes);
  out->append(", ");
  AppendKey(out, "disk_fill");
  AppendDouble(out, t.disk_fill);
  out->append(", ");
  AppendKey(out, "wall_ms");
  AppendDouble(out, t.replication_ms);
  out->append(", ");
  AppendKey(out, "nash_equilibrium");
  out->append(t.nash_equilibrium ? "true" : "false");
  out->append(", ");
  AppendKey(out, "nash_violation");
  AppendEscaped(out, t.nash_violation);
  out->append("}");

  out->append(", ");
  AppendKey(out, "transition");
  out->append("{");
  AppendKey(out, "planned_transfer_tuples");
  AppendU64(out, t.planned_transfer_tuples);
  out->append(", ");
  AppendKey(out, "nodes_added");
  AppendU64(out, t.nodes_added);
  out->append(", ");
  AppendKey(out, "nodes_removed");
  AppendU64(out, t.nodes_removed);
  out->append(", ");
  AppendKey(out, "plan_ms");
  AppendDouble(out, t.plan_ms);
  out->append(", ");
  AppendKey(out, "plan_used_sparse");
  out->append(t.plan_used_sparse ? "true" : "false");
  out->append(", ");
  AppendKey(out, "plan_graph_edges");
  AppendU64(out, t.plan_graph_edges);
  out->append(", ");
  AppendKey(out, "plan_solver_iterations");
  AppendU64(out, t.plan_solver_iterations);
  out->append("}");

  out->append("}");
}

}  // namespace

// ---- Histogram --------------------------------------------------------

Histogram::Histogram(std::vector<double> bounds)
    : bounds_(std::move(bounds)),
      min_(std::numeric_limits<double>::infinity()),
      max_(-std::numeric_limits<double>::infinity()) {
  if (bounds_.empty()) bounds_ = DefaultBounds();
  NASHDB_CHECK(std::is_sorted(bounds_.begin(), bounds_.end()))
      << "histogram bounds must ascend";
  buckets_ =
      std::make_unique<std::atomic<std::uint64_t>[]>(bounds_.size() + 1);
  for (std::size_t i = 0; i <= bounds_.size(); ++i) buckets_[i] = 0;
}

void Histogram::Observe(double x) {
  // First bound >= x: bounds are inclusive ("le") upper bounds, so a
  // sample equal to a bound lands in that bound's bucket.
  const std::size_t b =
      std::lower_bound(bounds_.begin(), bounds_.end(), x) - bounds_.begin();
  buckets_[b].fetch_add(1, std::memory_order_relaxed);
  count_.fetch_add(1, std::memory_order_relaxed);
  AtomicAdd(&sum_, x);
  AtomicMin(&min_, x);
  AtomicMax(&max_, x);
}

double Histogram::min() const {
  return count() == 0 ? 0.0 : min_.load(std::memory_order_relaxed);
}

double Histogram::max() const {
  return count() == 0 ? 0.0 : max_.load(std::memory_order_relaxed);
}

double Histogram::mean() const {
  const std::uint64_t n = count();
  return n == 0 ? 0.0 : sum() / static_cast<double>(n);
}

std::vector<std::uint64_t> Histogram::bucket_counts() const {
  std::vector<std::uint64_t> out(bounds_.size() + 1);
  for (std::size_t i = 0; i < out.size(); ++i) {
    out[i] = buckets_[i].load(std::memory_order_relaxed);
  }
  return out;
}

// ---- Registry ---------------------------------------------------------

Registry& Registry::Global() {
  static Registry* r = new Registry();  // leaked: outlives static dtors
  return *r;
}

namespace {
Counter* NoopCounter() {
  static Counter c;
  return &c;
}
Gauge* NoopGauge() {
  static Gauge g;
  return &g;
}
Histogram* NoopHistogram() {
  static Histogram* h = new Histogram({});
  return h;
}
}  // namespace

Counter* Registry::counter(std::string_view name) {
  if (!enabled()) return NoopCounter();
  {
    ReaderMutexLock lock(mu_);
    auto it = counters_.find(name);
    if (it != counters_.end()) return it->second.get();
  }
  WriterMutexLock lock(mu_);
  auto& slot = counters_[std::string(name)];
  if (!slot) slot = std::make_unique<Counter>();
  return slot.get();
}

Gauge* Registry::gauge(std::string_view name) {
  if (!enabled()) return NoopGauge();
  {
    ReaderMutexLock lock(mu_);
    auto it = gauges_.find(name);
    if (it != gauges_.end()) return it->second.get();
  }
  WriterMutexLock lock(mu_);
  auto& slot = gauges_[std::string(name)];
  if (!slot) slot = std::make_unique<Gauge>();
  return slot.get();
}

Histogram* Registry::histogram(std::string_view name,
                               std::span<const double> bounds) {
  if (!enabled()) return NoopHistogram();
  {
    ReaderMutexLock lock(mu_);
    auto it = histograms_.find(name);
    if (it != histograms_.end()) return it->second.get();
  }
  WriterMutexLock lock(mu_);
  auto& slot = histograms_[std::string(name)];
  if (!slot) {
    slot = std::make_unique<Histogram>(
        std::vector<double>(bounds.begin(), bounds.end()));
  }
  return slot.get();
}

std::uint64_t Registry::CounterValue(std::string_view name) const {
  ReaderMutexLock lock(mu_);
  auto it = counters_.find(name);
  return it == counters_.end() ? 0 : it->second->value();
}

void Registry::RecordReconfig(ReconfigTrace trace) {
  if (!enabled()) return;
  MutexLock lock(trace_mu_);
  traces_.push_back(std::move(trace));
}

bool Registry::AnnotateLastReconfig(
    const std::function<void(ReconfigTrace&)>& fn) {
  if (!enabled()) return true;  // nothing to annotate, nothing missing
  MutexLock lock(trace_mu_);
  if (traces_.empty()) return false;
  fn(traces_.back());
  return true;
}

std::size_t Registry::reconfig_count() const {
  MutexLock lock(trace_mu_);
  return traces_.size();
}

std::size_t Registry::metric_count() const {
  ReaderMutexLock lock(mu_);
  return counters_.size() + gauges_.size() + histograms_.size();
}

void Registry::Reset() {
  {
    WriterMutexLock lock(mu_);
    counters_.clear();
    gauges_.clear();
    histograms_.clear();
  }
  MutexLock tlock(trace_mu_);
  traces_.clear();
}

std::string Registry::SnapshotJson() const {
  std::string out;
  out.reserve(4096);
  out.append("{\n  \"counters\": {");
  {
    ReaderMutexLock lock(mu_);
    bool first = true;
    for (const auto& [name, c] : counters_) {
      out.append(first ? "\n    " : ",\n    ");
      first = false;
      AppendKey(&out, name);
      AppendU64(&out, c->value());
    }
    out.append(first ? "},\n" : "\n  },\n");

    out.append("  \"gauges\": {");
    first = true;
    for (const auto& [name, g] : gauges_) {
      out.append(first ? "\n    " : ",\n    ");
      first = false;
      AppendKey(&out, name);
      AppendDouble(&out, g->value());
    }
    out.append(first ? "},\n" : "\n  },\n");

    out.append("  \"histograms\": {");
    first = true;
    for (const auto& [name, h] : histograms_) {
      out.append(first ? "\n    " : ",\n    ");
      first = false;
      AppendKey(&out, name);
      out.append("{");
      AppendKey(&out, "count");
      AppendU64(&out, h->count());
      out.append(", ");
      AppendKey(&out, "sum");
      AppendDouble(&out, h->sum());
      out.append(", ");
      AppendKey(&out, "min");
      AppendDouble(&out, h->min());
      out.append(", ");
      AppendKey(&out, "max");
      AppendDouble(&out, h->max());
      out.append(", ");
      AppendKey(&out, "buckets");
      out.append("[");
      const std::vector<std::uint64_t> counts = h->bucket_counts();
      const std::vector<double>& bounds = h->bounds();
      for (std::size_t i = 0; i < counts.size(); ++i) {
        if (i) out.append(", ");
        out.append("{\"le\": ");
        if (i < bounds.size()) {
          AppendDouble(&out, bounds[i]);
        } else {
          out.append("\"inf\"");
        }
        out.append(", \"count\": ");
        AppendU64(&out, counts[i]);
        out.append("}");
      }
      out.append("]}");
    }
    out.append(first ? "},\n" : "\n  },\n");
  }

  out.append("  \"reconfigurations\": [");
  {
    MutexLock lock(trace_mu_);
    for (std::size_t i = 0; i < traces_.size(); ++i) {
      out.append(i == 0 ? "\n    " : ",\n    ");
      AppendTrace(&out, traces_[i]);
    }
    out.append(traces_.empty() ? "]\n" : "\n  ]\n");
  }
  out.append("}\n");
  return out;
}

// ---- free functions ---------------------------------------------------

void Count(std::string_view name, std::uint64_t n) {
  Registry& r = Registry::Global();
  if (!r.enabled()) return;
  r.counter(name)->Inc(n);
}

void SetGauge(std::string_view name, double value) {
  Registry& r = Registry::Global();
  if (!r.enabled()) return;
  r.gauge(name)->Set(value);
}

void Observe(std::string_view name, double value) {
  Registry& r = Registry::Global();
  if (!r.enabled()) return;
  r.histogram(name)->Observe(value);
}

ScopedTimerMs::ScopedTimerMs(const char* histogram_name)
    : name_(histogram_name), armed_(Enabled()) {
  if (armed_) start_ = std::chrono::steady_clock::now();
}

double ScopedTimerMs::ElapsedMs() const {
  if (!armed_) return 0.0;
  return std::chrono::duration_cast<std::chrono::duration<double, std::milli>>(
             std::chrono::steady_clock::now() - start_)
      .count();
}

ScopedTimerMs::~ScopedTimerMs() {
  if (armed_) Observe(name_, ElapsedMs());
}

}  // namespace metrics
}  // namespace nashdb
