#include "common/random.h"

#include <cmath>

namespace nashdb {
namespace {

std::uint64_t SplitMix64(std::uint64_t* state) {
  std::uint64_t z = (*state += 0x9e3779b97f4a7c15ULL);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

std::uint64_t Rotl(std::uint64_t x, int k) {
  return (x << k) | (x >> (64 - k));
}

}  // namespace

void Rng::Seed(std::uint64_t seed) {
  std::uint64_t sm = seed;
  for (auto& lane : s_) lane = SplitMix64(&sm);
}

std::uint64_t Rng::NextU64() {
  const std::uint64_t result = Rotl(s_[1] * 5, 7) * 9;
  const std::uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = Rotl(s_[3], 45);
  return result;
}

std::uint64_t Rng::Uniform(std::uint64_t n) {
  NASHDB_DCHECK(n > 0);
  // Lemire's nearly-divisionless bounded generation.
  std::uint64_t x = NextU64();
  __uint128_t m = static_cast<__uint128_t>(x) * n;
  std::uint64_t l = static_cast<std::uint64_t>(m);
  if (l < n) {
    std::uint64_t t = (0 - n) % n;
    while (l < t) {
      x = NextU64();
      m = static_cast<__uint128_t>(x) * n;
      l = static_cast<std::uint64_t>(m);
    }
  }
  return static_cast<std::uint64_t>(m >> 64);
}

double Rng::NextDouble() {
  // 53 high bits -> uniform double in [0, 1).
  return static_cast<double>(NextU64() >> 11) * 0x1.0p-53;
}

std::uint64_t Rng::Geometric(double p, std::uint64_t cap) {
  NASHDB_DCHECK(p > 0.0 && p <= 1.0);
  std::uint64_t k = 0;
  while (k < cap && !Bernoulli(p)) ++k;
  return k;
}

double Rng::Gaussian() {
  // Marsaglia polar method; discards the second deviate for simplicity.
  double u, v, s;
  do {
    u = 2.0 * NextDouble() - 1.0;
    v = 2.0 * NextDouble() - 1.0;
    s = u * u + v * v;
  } while (s >= 1.0 || s == 0.0);
  return u * std::sqrt(-2.0 * std::log(s) / s);
}

std::uint64_t Rng::Zipf(std::uint64_t n, double s) {
  NASHDB_DCHECK(n > 0);
  NASHDB_DCHECK(s > 0.0);
  // Devroye's rejection method for the Zipf distribution; O(1) expected
  // time, no per-n precomputation, so it scales to billion-tuple tables.
  const double nd = static_cast<double>(n);
  auto h = [s](double x) {
    // Integral of x^-s: handles s == 1 separately.
    if (std::abs(s - 1.0) < 1e-12) return std::log(x);
    return (std::pow(x, 1.0 - s) - 1.0) / (1.0 - s);
  };
  auto h_inv = [s](double y) {
    if (std::abs(s - 1.0) < 1e-12) return std::exp(y);
    return std::pow(1.0 + y * (1.0 - s), 1.0 / (1.0 - s));
  };
  const double hx0 = h(0.5) - 1.0;  // h at x = 1/2 minus f(1)=1
  const double hn = h(nd + 0.5);
  for (;;) {
    const double u = hx0 + NextDouble() * (hn - hx0);
    const double x = h_inv(u);
    const std::uint64_t k =
        static_cast<std::uint64_t>(std::floor(x + 0.5));
    if (k < 1 || k > n) continue;
    const double kd = static_cast<double>(k);
    // Accept k with probability f(k) / envelope.
    if (u >= h(kd + 0.5) - std::pow(kd, -s)) {
      return k - 1;  // return 0-based rank
    }
  }
}

}  // namespace nashdb
