#ifndef NASHDB_COMMON_MUTEX_H_
#define NASHDB_COMMON_MUTEX_H_

#include <condition_variable>
#include <mutex>
#include <shared_mutex>
#include <utility>

#include "common/thread_annotations.h"

namespace nashdb {

/// Annotated exclusive mutex: a thin wrapper over std::mutex that Clang's
/// thread-safety analysis can see (std::mutex itself carries no capability
/// attributes, so code locking it directly gets no static checking).
/// Lock through MutexLock or the Lock/Unlock pair; fields protected by an
/// instance are declared NASHDB_GUARDED_BY(that instance).
class NASHDB_CAPABILITY("mutex") Mutex {
 public:
  Mutex() = default;
  Mutex(const Mutex&) = delete;
  Mutex& operator=(const Mutex&) = delete;

  void Lock() NASHDB_ACQUIRE() { mu_.lock(); }
  void Unlock() NASHDB_RELEASE() { mu_.unlock(); }
  bool TryLock() NASHDB_TRY_ACQUIRE(true) { return mu_.try_lock(); }

  /// The wrapped mutex, for interop (CondVar). Locking through it bypasses
  /// the analysis; only CondVar uses it.
  std::mutex& native() { return mu_; }

 private:
  std::mutex mu_;
};

/// RAII exclusive lock over Mutex (the annotated std::lock_guard).
class NASHDB_SCOPED_CAPABILITY MutexLock {
 public:
  explicit MutexLock(Mutex& mu) NASHDB_ACQUIRE(mu) : mu_(mu) { mu_.Lock(); }
  ~MutexLock() NASHDB_RELEASE() { mu_.Unlock(); }

  MutexLock(const MutexLock&) = delete;
  MutexLock& operator=(const MutexLock&) = delete;

 private:
  Mutex& mu_;
};

/// Condition variable paired with Mutex. Wait() must be called with the
/// mutex held (REQUIRES); it atomically releases the mutex while blocked
/// and reacquires it before returning, so from the analysis' point of view
/// the capability is held across the call — matching the caller's RAII
/// scope.
class CondVar {
 public:
  CondVar() = default;
  CondVar(const CondVar&) = delete;
  CondVar& operator=(const CondVar&) = delete;

  template <typename Pred>
  void Wait(Mutex& mu, Pred pred) NASHDB_REQUIRES(mu) {
    // Adopt the caller's hold for the duration of the wait, then release
    // the std::unique_lock so ownership returns to the caller's guard.
    std::unique_lock<std::mutex> lock(mu.native(), std::adopt_lock);
    cv_.wait(lock, std::move(pred));
    lock.release();
  }

  void NotifyOne() { cv_.notify_one(); }
  void NotifyAll() { cv_.notify_all(); }

 private:
  std::condition_variable cv_;
};

/// Annotated reader/writer mutex over std::shared_mutex.
class NASHDB_CAPABILITY("shared_mutex") SharedMutex {
 public:
  SharedMutex() = default;
  SharedMutex(const SharedMutex&) = delete;
  SharedMutex& operator=(const SharedMutex&) = delete;

  void Lock() NASHDB_ACQUIRE() { mu_.lock(); }
  void Unlock() NASHDB_RELEASE() { mu_.unlock(); }
  void ReaderLock() NASHDB_ACQUIRE_SHARED() { mu_.lock_shared(); }
  void ReaderUnlock() NASHDB_RELEASE_SHARED() { mu_.unlock_shared(); }

 private:
  std::shared_mutex mu_;
};

/// RAII exclusive (writer) lock over SharedMutex.
class NASHDB_SCOPED_CAPABILITY WriterMutexLock {
 public:
  explicit WriterMutexLock(SharedMutex& mu) NASHDB_ACQUIRE(mu) : mu_(mu) {
    mu_.Lock();
  }
  ~WriterMutexLock() NASHDB_RELEASE() { mu_.Unlock(); }

  WriterMutexLock(const WriterMutexLock&) = delete;
  WriterMutexLock& operator=(const WriterMutexLock&) = delete;

 private:
  SharedMutex& mu_;
};

/// RAII shared (reader) lock over SharedMutex.
class NASHDB_SCOPED_CAPABILITY ReaderMutexLock {
 public:
  explicit ReaderMutexLock(SharedMutex& mu) NASHDB_ACQUIRE_SHARED(mu)
      : mu_(mu) {
    mu_.ReaderLock();
  }
  ~ReaderMutexLock() NASHDB_RELEASE() { mu_.ReaderUnlock(); }

  ReaderMutexLock(const ReaderMutexLock&) = delete;
  ReaderMutexLock& operator=(const ReaderMutexLock&) = delete;

 private:
  SharedMutex& mu_;
};

}  // namespace nashdb

#endif  // NASHDB_COMMON_MUTEX_H_
