#include "common/thread_pool.h"

#include <algorithm>
#include <atomic>
#include <exception>
#include <memory>
#include <utility>

#include "common/logging.h"

namespace nashdb {
namespace {

/// The pool whose WorkerLoop the current thread is running, if any.
thread_local const ThreadPool* current_pool = nullptr;

}  // namespace

ThreadPool::ThreadPool(std::size_t num_threads) {
  workers_.reserve(num_threads);
  for (std::size_t i = 0; i < num_threads; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    MutexLock lock(mu_);
    stop_ = true;
  }
  cv_.NotifyAll();
  for (std::thread& w : workers_) w.join();
}

void ThreadPool::Schedule(std::function<void()> fn) {
  if (workers_.empty()) {
    fn();
    return;
  }
  {
    MutexLock lock(mu_);
    NASHDB_CHECK(!stop_) << "Schedule on a destroyed ThreadPool";
    queue_.push_back(std::move(fn));
  }
  cv_.NotifyOne();
}

bool ThreadPool::OnWorkerThread() const { return current_pool == this; }

std::size_t ThreadPool::DefaultThreads() {
  // Pool *sizing* only: thread count never feeds a simulated-time or
  // routing decision (determinism across reconfig_threads is pinned by
  // tests), so reading the host's core count here is safe.
  // NASHDB_LINT_ALLOW(det-source): pool sizing default, not simulated time
  return std::max<std::size_t>(1, std::thread::hardware_concurrency());
}

void ThreadPool::WorkerLoop() {
  current_pool = this;
  for (;;) {
    std::function<void()> task;
    {
      MutexLock lock(mu_);
      cv_.Wait(mu_, [this]() NASHDB_REQUIRES(mu_) {
        return stop_ || !queue_.empty();
      });
      if (queue_.empty()) return;  // stop_ and drained
      task = std::move(queue_.front());
      queue_.pop_front();
    }
    task();
  }
}

void ParallelFor(ThreadPool* pool, std::size_t n,
                 const std::function<void(std::size_t)>& fn,
                 std::size_t grain) {
  if (n == 0) return;
  if (grain == 0) grain = 1;
  const std::size_t blocks = (n + grain - 1) / grain;
  if (pool == nullptr || pool->num_threads() < 2 || blocks < 2 ||
      pool->OnWorkerThread()) {
    for (std::size_t i = 0; i < n; ++i) fn(i);
    return;
  }

  // Shared by the caller and every scheduled runner. shared_ptr so a runner
  // that was queued but never claimed a block still has a live state to
  // decrement `pending` on, even in exotic unwinds.
  struct State {
    std::atomic<std::size_t> next{0};
    std::atomic<bool> cancelled{false};
    Mutex mu;
    CondVar done;
    std::size_t pending NASHDB_GUARDED_BY(mu) = 0;
    std::exception_ptr error NASHDB_GUARDED_BY(mu);
  };
  auto state = std::make_shared<State>();

  // Claims blocks until the range (or an exception) exhausts them. `fn` is
  // captured by reference: the caller waits for `pending` to hit zero
  // before returning, so the reference cannot dangle.
  auto run_blocks = [state, &fn, n, grain] {
    while (!state->cancelled.load(std::memory_order_relaxed)) {
      const std::size_t begin =
          state->next.fetch_add(grain, std::memory_order_relaxed);
      if (begin >= n) break;
      const std::size_t end = std::min(n, begin + grain);
      try {
        for (std::size_t i = begin; i < end; ++i) fn(i);
      } catch (...) {
        MutexLock lock(state->mu);
        if (!state->error) state->error = std::current_exception();
        state->cancelled.store(true, std::memory_order_relaxed);
      }
    }
  };

  const std::size_t runners = std::min(pool->num_threads(), blocks - 1);
  {
    MutexLock lock(state->mu);
    state->pending = runners;
  }
  for (std::size_t r = 0; r < runners; ++r) {
    pool->Schedule([state, run_blocks] {
      run_blocks();
      MutexLock lock(state->mu);
      if (--state->pending == 0) state->done.NotifyAll();
    });
  }
  run_blocks();  // the caller participates

  MutexLock lock(state->mu);
  state->done.Wait(state->mu, [&state]() NASHDB_REQUIRES(state->mu) {
    return state->pending == 0;
  });
  if (state->error) std::rethrow_exception(state->error);
}

}  // namespace nashdb
