#ifndef NASHDB_COMMON_STATS_H_
#define NASHDB_COMMON_STATS_H_

#include <array>
#include <cstddef>
#include <cstdint>
#include <vector>

#include "common/mutex.h"
#include "common/thread_annotations.h"

namespace nashdb {

/// Online mean/variance accumulator (Welford's algorithm, [44] in the
/// paper). Numerically stable for long benchmark runs.
class RunningStat {
 public:
  void Add(double x);

  std::size_t count() const { return n_; }
  double mean() const { return n_ ? mean_ : 0.0; }
  /// Population variance (divides by n).
  double variance() const { return n_ ? m2_ / static_cast<double>(n_) : 0.0; }
  /// Unnormalized variance: n * variance = sum of squared deviations.
  /// This is exactly the paper's fragment "error" metric (Eq. 4).
  double unnormalized_variance() const { return m2_; }
  double stddev() const;
  double min() const { return n_ ? min_ : 0.0; }
  double max() const { return n_ ? max_ : 0.0; }
  double sum() const { return sum_; }

 private:
  std::size_t n_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double sum_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

/// Collects samples and answers percentile queries. Used for the paper's
/// tail-latency experiment (Figure 10: 95th / 99th percentiles).
///
/// Thread-safe: Percentile() sorts lazily, which mutates internal state
/// even through the const interface, so every member serializes on an
/// internal mutex. (The pre-mutex version let two concurrent readers race
/// inside std::sort — reachable since the reconfiguration pipeline went
/// multithreaded; see DESIGN.md "Observability" post-mortem.)
class PercentileTracker {
 public:
  PercentileTracker() = default;

  // The mutex makes the tracker non-copyable; nothing in the repo copied
  // one, and the restriction keeps the thread-safety story simple.
  PercentileTracker(const PercentileTracker&) = delete;
  PercentileTracker& operator=(const PercentileTracker&) = delete;

  void Add(double x) NASHDB_EXCLUDES(mu_);

  std::size_t count() const NASHDB_EXCLUDES(mu_);
  double mean() const NASHDB_EXCLUDES(mu_);

  /// Returns the p-th percentile (p in [0, 100]) using linear interpolation
  /// between closest ranks. Returns 0 when empty.
  double Percentile(double p) const NASHDB_EXCLUDES(mu_);

 private:
  mutable Mutex mu_;
  mutable std::vector<double> samples_ NASHDB_GUARDED_BY(mu_);
  mutable bool sorted_ NASHDB_GUARDED_BY(mu_) = false;
};

/// Bounded log-bucket histogram for streaming percentile estimates:
/// constant memory at any sample count, unlike PercentileTracker, which
/// stores every sample (10⁷-query scenario runs would hold 80 MB of
/// latencies). Buckets are log-spaced with 4% relative width over
/// [1e-4, ~1e8) plus an underflow bucket, so a reported percentile is
/// within one bucket (<= 4% relative) of the exact value — plenty for
/// scenario SLO gates, documented in DESIGN.md §13. Serial like the
/// driver loop that owns it: no mutex, and copyable so it can live in
/// RunResult.
class LogHistogram {
 public:
  void Add(double x);

  std::size_t count() const { return count_; }
  double sum() const { return sum_; }
  double mean() const {
    return count_ == 0 ? 0.0 : sum_ / static_cast<double>(count_);
  }
  double max() const { return max_; }

  /// Returns an upper bound for the p-th percentile (p in [0, 100]): the
  /// upper edge of the bucket holding the closest-rank sample (exact max_
  /// for the top occupied bucket's tail). 0 when empty.
  double Percentile(double p) const;

 private:
  static constexpr double kMinValue = 1e-4;
  static constexpr double kGrowth = 1.04;
  static constexpr std::size_t kBuckets = 720;

  std::array<std::uint64_t, kBuckets> buckets_{};
  std::size_t count_ = 0;
  double sum_ = 0.0;
  double max_ = 0.0;
};

/// Exact one-pass sum of squared deviations from the mean for a sample
/// vector. Reference implementation used by tests to validate the O(1)
/// prefix-sum error formula (paper Eq. 4 vs Eq. 6).
double SumSquaredDeviations(const std::vector<double>& xs);

}  // namespace nashdb

#endif  // NASHDB_COMMON_STATS_H_
