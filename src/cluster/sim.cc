#include "cluster/sim.h"

#include <algorithm>

#include "common/logging.h"

namespace nashdb {

ClusterSim::ClusterSim(const ClusterSimOptions& options) : options_(options) {
  NASHDB_CHECK_GT(options_.tuples_per_second, 0.0);
  NASHDB_CHECK_GT(options_.transfer_tuples_per_second, 0.0);
}

void ClusterSim::ApplyConfig(const ClusterConfig& config, SimTime now,
                             const TransitionPlan* plan) {
  // Settle rent at the old node count up to `now`.
  accrued_cost_ += static_cast<Money>(billed_nodes_) *
                   options_.node_cost_per_hour * (now - cost_marker_time_) /
                   3600.0;
  cost_marker_time_ = now;
  billed_nodes_ = config.node_count();

  // Remap queue backlogs: new node j inherits the backlog of the old node
  // matched to it by the plan (a transitioned machine keeps its pending
  // work); fresh nodes start idle.
  std::vector<SimTime> new_busy(config.node_count(), now);
  if (plan != nullptr) {
    for (const NodeTransition& move : plan->moves) {
      if (move.new_node == kInvalidNode) continue;
      SimTime base = now;
      if (move.old_node != kInvalidNode &&
          move.old_node < busy_until_.size()) {
        base = std::max(base, busy_until_[move.old_node]);
      }
      // The receiving node must ingest its missing tuples before serving
      // new reads.
      const SimTime transfer_s = static_cast<double>(move.transfer_tuples) /
                                 options_.transfer_tuples_per_second;
      new_busy[move.new_node] = base + transfer_s;
      transferred_tuples_ += move.transfer_tuples;
    }
  }
  busy_until_ = std::move(new_busy);
}

SimTime ClusterSim::WaitSeconds(NodeId node, SimTime now) const {
  NASHDB_DCHECK(node < busy_until_.size());
  return std::max<SimTime>(0.0, busy_until_[node] - now);
}

SimTime ClusterSim::EnqueueRead(NodeId node, TupleCount tuples, SimTime now,
                                bool first_use_by_query) {
  NASHDB_CHECK_LT(node, busy_until_.size());
  SimTime start = std::max(busy_until_[node], now);
  if (first_use_by_query) start += options_.span_overhead_s;
  const SimTime done = start + ReadSeconds(tuples);
  busy_until_[node] = done;
  read_tuples_ += tuples;
  return done;
}

Money ClusterSim::AccruedCost(SimTime now) const {
  return accrued_cost_ + static_cast<Money>(billed_nodes_) *
                             options_.node_cost_per_hour *
                             (now - cost_marker_time_) / 3600.0;
}

}  // namespace nashdb
