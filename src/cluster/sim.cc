#include "cluster/sim.h"

#include <algorithm>

#include "common/logging.h"

namespace nashdb {

ClusterSim::ClusterSim(const ClusterSimOptions& options) : options_(options) {
  NASHDB_CHECK_GT(options_.tuples_per_second, 0.0);
  NASHDB_CHECK_GT(options_.transfer_tuples_per_second, 0.0);
}

void ClusterSim::ApplyConfig(const ClusterConfig& config, SimTime now,
                             const TransitionPlan* plan,
                             const std::vector<bool>* planned_dead) {
  // Settle rent at the old node count up to `now`.
  accrued_cost_ += static_cast<Money>(billed_nodes_) *
                   options_.node_cost_per_hour * (now - cost_marker_time_) /
                   3600.0;
  cost_marker_time_ = now;
  billed_nodes_ = config.node_count();

  const std::size_t n_old = busy_until_.size();
  const std::size_t n_new = config.node_count();
  std::vector<SimTime> new_busy(n_new, now);
  std::vector<SimTime> new_down(n_new, 0.0);
  std::vector<SimTime> new_unroutable(n_new, 0.0);
  std::vector<SimTime> new_slow(n_new, 0.0);
  std::vector<double> new_speed(n_new, 1.0);

  last_transfer_window_s_ = 0.0;
  if (plan != nullptr) {
    const Money drain_rate = options_.node_cost_per_hour / 3600.0;
    std::vector<bool> old_covered(n_old, false);
    for (const NodeTransition& move : plan->moves) {
      const bool old_valid =
          move.old_node != kInvalidNode && move.old_node < n_old;
      if (old_valid) old_covered[move.old_node] = true;
      if (move.new_node == kInvalidNode) {
        // Decommissioned: the machine must drain its accepted reads
        // before release, so its rent runs until the backlog empties.
        // Billed up front at transition time. Dead nodes lost their
        // backlog at crash time and release immediately.
        if (old_valid && NodeAlive(move.old_node, now) &&
            busy_until_[move.old_node] > now) {
          accrued_cost_ += drain_rate * (busy_until_[move.old_node] - now);
        }
        continue;
      }
      SimTime base = now;
      const bool alive = old_valid && NodeAlive(move.old_node, now);
      // A machine crashed *inside an online build window* is dead at
      // `now` but was not planned dead: its crash must ride the matching
      // (see the planned_dead header contract), or a retroactive apply
      // would resurrect it.
      const bool carry_crash =
          old_valid && !alive && planned_dead != nullptr &&
          move.old_node < planned_dead->size() &&
          !(*planned_dead)[move.old_node];
      if (alive || carry_crash) {
        // A transitioned machine keeps its pending work and fault state —
        // including any partition: the network condition travels with the
        // machine, not with its placement assignment.
        base = std::max(base, busy_until_[move.old_node]);
        new_slow[move.new_node] = slow_until_[move.old_node];
        new_speed[move.new_node] = speed_factor_[move.old_node];
        new_unroutable[move.new_node] = unroutable_until_[move.old_node];
        if (carry_crash) {
          new_down[move.new_node] = down_until_[move.old_node];
        }
      }
      // A dead matched machine (dead at planning time) is replaced by a
      // fresh (alive, idle) one; the failure-aware planner priced the
      // full copy into `transfer_tuples`. The receiving node must ingest
      // its missing tuples before serving new reads.
      const SimTime transfer_s = static_cast<double>(move.transfer_tuples) /
                                 options_.transfer_tuples_per_second;
      new_busy[move.new_node] = base + transfer_s;
      transferred_tuples_ += move.transfer_tuples;
      last_transfer_window_s_ = std::max(last_transfer_window_s_, transfer_s);
    }
    // Old nodes the plan never mentions (hand-built plans) are released
    // like decommissioned ones: drain rent, then gone — never silently
    // truncated.
    for (std::size_t m = 0; m < n_old; ++m) {
      if (!old_covered[m] && NodeAlive(static_cast<NodeId>(m), now) &&
          busy_until_[m] > now) {
        accrued_cost_ += drain_rate * (busy_until_[m] - now);
      }
    }
  }
  // plan == nullptr: teleport semantics — all per-node state (backlog,
  // liveness, speed) starts fresh; see the header contract.
  busy_until_ = std::move(new_busy);
  down_until_ = std::move(new_down);
  unroutable_until_ = std::move(new_unroutable);
  slow_until_ = std::move(new_slow);
  speed_factor_ = std::move(new_speed);
}

SimTime ClusterSim::WaitSeconds(NodeId node, SimTime now) const {
  NASHDB_DCHECK(node < busy_until_.size());
  return std::max<SimTime>(0.0, busy_until_[node] - now);
}

void ClusterSim::ChargeTransfer(NodeId node, TupleCount tuples, SimTime now) {
  NASHDB_CHECK_LT(node, busy_until_.size());
  NASHDB_CHECK(NodeAlive(node, now))
      << "transfer charged to dead node " << node;
  const SimTime transfer_s = static_cast<double>(tuples) /
                             options_.transfer_tuples_per_second;
  busy_until_[node] = std::max(busy_until_[node], now) + transfer_s;
  transferred_tuples_ += tuples;
}

void ClusterSim::FailNode(NodeId node, SimTime now, SimTime recover_at) {
  NASHDB_CHECK_LT(node, busy_until_.size());
  NASHDB_CHECK_GE(recover_at, now);
  // Crash-stop: queued work is lost; the machine comes back (if ever)
  // with an empty queue. Completions already handed to queries stand (the
  // sim accounts them eagerly at enqueue time).
  busy_until_[node] = now;
  down_until_[node] = recover_at;
}

void ClusterSim::RecoverNode(NodeId node, SimTime now) {
  NASHDB_CHECK_LT(node, busy_until_.size());
  down_until_[node] = now;
  busy_until_[node] = std::max(busy_until_[node], now);
}

void ClusterSim::SlowNode(NodeId node, double factor, SimTime until) {
  NASHDB_CHECK_LT(node, busy_until_.size());
  NASHDB_CHECK_GT(factor, 0.0);
  speed_factor_[node] = factor;
  slow_until_[node] = until;
}

void ClusterSim::PartitionNode(NodeId node, SimTime now, SimTime heal_at) {
  NASHDB_CHECK_LT(node, busy_until_.size());
  NASHDB_CHECK_GE(heal_at, now);
  // Observer-relative: the node keeps its backlog (queued reads finish
  // behind the partition and their completions stand) and keeps accruing
  // rent; only routability changes.
  unroutable_until_[node] = heal_at;
}

void ClusterSim::HealNode(NodeId node, SimTime now) {
  NASHDB_CHECK_LT(node, busy_until_.size());
  unroutable_until_[node] = std::min(unroutable_until_[node], now);
}

std::size_t ClusterSim::LiveNodeCount(SimTime at) const {
  std::size_t live = 0;
  for (std::size_t m = 0; m < down_until_.size(); ++m) {
    if (at >= down_until_[m]) ++live;
  }
  return live;
}

std::size_t ClusterSim::PartitionedNodeCount(SimTime at) const {
  std::size_t partitioned = 0;
  for (std::size_t m = 0; m < down_until_.size(); ++m) {
    if (at >= down_until_[m] && at < unroutable_until_[m]) ++partitioned;
  }
  return partitioned;
}

Money ClusterSim::AccruedCost(SimTime now) const {
  return accrued_cost_ + static_cast<Money>(billed_nodes_) *
                             options_.node_cost_per_hour *
                             (now - cost_marker_time_) / 3600.0;
}

}  // namespace nashdb
