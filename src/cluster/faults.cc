#include "cluster/faults.h"

#include <algorithm>
#include <cmath>
#include <cstdlib>
#include <string>

#include "common/logging.h"

namespace nashdb {
namespace {

std::string_view Trim(std::string_view s) {
  while (!s.empty() && (s.front() == ' ' || s.front() == '\t')) {
    s.remove_prefix(1);
  }
  while (!s.empty() && (s.back() == ' ' || s.back() == '\t')) {
    s.remove_suffix(1);
  }
  return s;
}

bool ConsumePrefix(std::string_view* s, std::string_view prefix) {
  if (s->substr(0, prefix.size()) != prefix) return false;
  s->remove_prefix(prefix.size());
  return true;
}

/// Parses a leading non-negative double, consuming it. False on no parse.
bool ConsumeDouble(std::string_view* s, double* out) {
  const std::string buf(*s);
  char* end = nullptr;
  const double v = std::strtod(buf.c_str(), &end);
  if (end == buf.c_str() || v < 0.0) return false;
  s->remove_prefix(static_cast<std::size_t>(end - buf.c_str()));
  *out = v;
  return true;
}

bool ConsumeNodeId(std::string_view* s, NodeId* out) {
  if (!ConsumePrefix(s, "n")) return false;
  double v = 0.0;
  if (!ConsumeDouble(s, &v) || v != std::floor(v)) return false;
  *out = static_cast<NodeId>(v);
  return true;
}

/// Parses "nID" (node-scoped) or "rID" (rack-scoped), filling exactly one
/// of `node` / `rack` and leaving the other kInvalidNode.
bool ConsumeTarget(std::string_view* s, NodeId* node, NodeId* rack) {
  *node = kInvalidNode;
  *rack = kInvalidNode;
  const bool is_rack = !s->empty() && s->front() == 'r';
  if (is_rack) {
    s->remove_prefix(1);
  } else if (!ConsumePrefix(s, "n")) {
    return false;
  }
  double v = 0.0;
  if (!ConsumeDouble(s, &v) || v != std::floor(v)) return false;
  *(is_rack ? rack : node) = static_cast<NodeId>(v);
  return true;
}

/// Optional ":for=D" suffix; defaults to kNeverRecovers.
bool ConsumeDuration(std::string_view* s, SimTime* out) {
  *out = kNeverRecovers;
  if (s->empty()) return true;
  if (!ConsumePrefix(s, ":for=")) return false;
  double v = 0.0;
  if (!ConsumeDouble(s, &v)) return false;
  *out = v;
  return s->empty();
}

/// Parse rejection naming the offending token and the grammar it was
/// expected to match, per-clause (exit code 2 at the CLI).
Status BadClause(std::string_view clause, std::string_view expected) {
  return Status::InvalidArgument("bad --faults clause '" +
                                 std::string(clause) + "': expected " +
                                 std::string(expected));
}

}  // namespace

Result<FaultSpec> FaultSpec::Parse(std::string_view spec) {
  FaultSpec out;
  while (!spec.empty()) {
    const std::size_t sep = spec.find(';');
    std::string_view clause = Trim(spec.substr(0, sep));
    spec = sep == std::string_view::npos ? std::string_view()
                                         : spec.substr(sep + 1);
    if (clause.empty()) continue;
    std::string_view rest = clause;
    FaultEvent ev;
    if (ConsumePrefix(&rest, "crash@")) {
      ev.type = FaultType::kCrash;
      if (!ConsumeDouble(&rest, &ev.time) || !ConsumePrefix(&rest, ":") ||
          !ConsumeTarget(&rest, &ev.node, &ev.rack) ||
          !ConsumeDuration(&rest, &ev.duration_s)) {
        return BadClause(clause, "crash@T:(n|r)ID[:for=D]");
      }
      out.scripted.push_back(ev);
    } else if (ConsumePrefix(&rest, "recover@")) {
      ev.type = FaultType::kRecover;
      if (!ConsumeDouble(&rest, &ev.time) || !ConsumePrefix(&rest, ":") ||
          !ConsumeTarget(&rest, &ev.node, &ev.rack) || !rest.empty()) {
        return BadClause(clause, "recover@T:(n|r)ID");
      }
      out.scripted.push_back(ev);
    } else if (ConsumePrefix(&rest, "slow@")) {
      ev.type = FaultType::kSlowdown;
      if (!ConsumeDouble(&rest, &ev.time) || !ConsumePrefix(&rest, ":") ||
          !ConsumeTarget(&rest, &ev.node, &ev.rack) ||
          !ConsumePrefix(&rest, ":x") || !ConsumeDouble(&rest, &ev.factor) ||
          !ConsumeDuration(&rest, &ev.duration_s) || ev.factor <= 0.0 ||
          ev.factor > 1.0) {
        return BadClause(clause,
                         "slow@T:(n|r)ID:xF[:for=D] with F in (0, 1]");
      }
      out.scripted.push_back(ev);
    } else if (ConsumePrefix(&rest, "partition@")) {
      ev.type = FaultType::kPartition;
      if (!ConsumeDouble(&rest, &ev.time) || !ConsumePrefix(&rest, ":") ||
          !ConsumeTarget(&rest, &ev.node, &ev.rack) ||
          !ConsumeDuration(&rest, &ev.duration_s)) {
        return BadClause(clause, "partition@T:(n|r)ID[:for=D]");
      }
      out.scripted.push_back(ev);
    } else if (ConsumePrefix(&rest, "heal@")) {
      ev.type = FaultType::kHeal;
      if (!ConsumeDouble(&rest, &ev.time) || !ConsumePrefix(&rest, ":") ||
          !ConsumeTarget(&rest, &ev.node, &ev.rack) || !rest.empty()) {
        return BadClause(clause, "heal@T:(n|r)ID");
      }
      out.scripted.push_back(ev);
    } else if (ConsumePrefix(&rest, "interrupt@")) {
      ev.type = FaultType::kInterrupt;
      if (!ConsumeDouble(&rest, &ev.time) || !rest.empty()) {
        return BadClause(clause, "interrupt@T");
      }
      out.scripted.push_back(ev);
    } else if (ConsumePrefix(&rest, "racks=")) {
      double v = 0.0;
      if (!ConsumeDouble(&rest, &v) || !rest.empty() || v < 1.0 ||
          v != std::floor(v)) {
        return BadClause(clause, "racks=N with integer N >= 1");
      }
      out.racks = static_cast<std::size_t>(v);
    } else if (ConsumePrefix(&rest, "mttf=")) {
      if (!ConsumeDouble(&rest, &out.mttf_s) || !rest.empty() ||
          out.mttf_s <= 0.0) {
        return BadClause(clause, "mttf=S with S > 0");
      }
    } else if (ConsumePrefix(&rest, "mttr=")) {
      if (!ConsumeDouble(&rest, &out.mttr_s) || !rest.empty()) {
        return BadClause(clause, "mttr=S");
      }
    } else if (ConsumePrefix(&rest, "straggle-every=")) {
      if (!ConsumeDouble(&rest, &out.straggle_every_s) || !rest.empty() ||
          out.straggle_every_s <= 0.0) {
        return BadClause(clause, "straggle-every=S with S > 0");
      }
    } else if (ConsumePrefix(&rest, "straggle-for=")) {
      if (!ConsumeDouble(&rest, &out.straggle_for_s) || !rest.empty()) {
        return BadClause(clause, "straggle-for=S");
      }
    } else if (ConsumePrefix(&rest, "straggle-x=")) {
      if (!ConsumeDouble(&rest, &out.straggle_factor) || !rest.empty() ||
          out.straggle_factor <= 0.0 || out.straggle_factor > 1.0) {
        return BadClause(clause, "straggle-x=F with F in (0, 1]");
      }
    } else if (ConsumePrefix(&rest, "pinterrupt=")) {
      if (!ConsumeDouble(&rest, &out.interrupt_prob) || !rest.empty() ||
          out.interrupt_prob > 1.0) {
        return BadClause(clause, "pinterrupt=P with P in [0, 1]");
      }
    } else {
      const std::size_t head = clause.find_first_of("@=");
      return Status::InvalidArgument(
          "bad --faults clause '" + std::string(clause) +
          "': unknown clause head '" +
          std::string(clause.substr(0, head)) +
          "'; known clauses: crash@ recover@ slow@ partition@ heal@ "
          "interrupt@ racks= mttf= mttr= straggle-every= straggle-for= "
          "straggle-x= pinterrupt=");
    }
  }
  for (const FaultEvent& ev : out.scripted) {
    if (ev.rack == kInvalidNode) continue;
    if (out.racks == 0) {
      return Status::InvalidArgument(
          "bad --faults spec: rack-scoped target 'r" +
          std::to_string(ev.rack) +
          "' requires a 'racks=N' topology clause");
    }
    if (ev.rack >= out.racks) {
      return Status::InvalidArgument(
          "bad --faults spec: rack id 'r" + std::to_string(ev.rack) +
          "' out of range for racks=" + std::to_string(out.racks));
    }
  }
  std::stable_sort(out.scripted.begin(), out.scripted.end(),
                   [](const FaultEvent& a, const FaultEvent& b) {
                     return a.time < b.time;
                   });
  return out;
}

FaultScheduler::FaultScheduler(FaultSpec spec, std::uint64_t seed)
    : spec_(std::move(spec)), rng_(seed) {
  if (spec_.mttf_s > 0.0) next_crash_ = DrawExponential(spec_.mttf_s);
  if (spec_.straggle_every_s > 0.0) {
    next_straggle_ = DrawExponential(spec_.straggle_every_s);
  }
}

SimTime FaultScheduler::DrawExponential(double mean_s) {
  // Inverse-CDF; NextDouble() < 1 keeps the log argument positive.
  return clock_ + -mean_s * std::log(1.0 - rng_.NextDouble());
}

NodeId FaultScheduler::PickLiveVictim(const ClusterSim& sim, SimTime at) {
  std::vector<NodeId> live;
  live.reserve(sim.node_count());
  for (NodeId m = 0; m < sim.node_count(); ++m) {
    if (sim.NodeAlive(m, at)) live.push_back(m);
  }
  if (live.empty()) return kInvalidNode;
  return live[static_cast<std::size_t>(rng_.Uniform(live.size()))];
}

std::vector<FaultEvent> FaultScheduler::AdvanceTo(SimTime now,
                                                  ClusterSim* sim) {
  NASHDB_DCHECK(now >= clock_) << "fault clock moved backwards";
  std::vector<FaultEvent> delivered;
  for (;;) {
    // Earliest pending event; strict < keeps the scripted > crash >
    // straggle priority on exact ties, so replays are stable.
    enum { kScripted, kStochCrash, kStochStraggle } src = kScripted;
    SimTime t = next_scripted_ < spec_.scripted.size()
                    ? spec_.scripted[next_scripted_].time
                    : kNeverRecovers;
    if (next_crash_ < t) {
      t = next_crash_;
      src = kStochCrash;
    }
    if (next_straggle_ < t) {
      t = next_straggle_;
      src = kStochStraggle;
    }
    if (t > now) break;
    clock_ = t;

    FaultEvent ev;
    if (src == kScripted) {
      // Applies one node-resolved event; returns false (and counts a
      // drop) when the target's state makes it a no-op.
      const auto deliver_one = [&](const FaultEvent& e) -> bool {
        switch (e.type) {
          case FaultType::kCrash:
            if (e.node >= sim->node_count() || !sim->NodeAlive(e.node, t)) {
              break;
            }
            sim->FailNode(e.node, t, t + e.duration_s);
            ++stats_.crashes;
            return true;
          case FaultType::kRecover:
            if (e.node >= sim->node_count() || sim->NodeAlive(e.node, t)) {
              break;
            }
            sim->RecoverNode(e.node, t);
            ++stats_.recoveries;
            return true;
          case FaultType::kSlowdown:
            if (e.node >= sim->node_count() || !sim->NodeAlive(e.node, t)) {
              break;
            }
            sim->SlowNode(e.node, e.factor, t + e.duration_s);
            ++stats_.slowdowns;
            return true;
          case FaultType::kPartition:
            if (e.node >= sim->node_count() || !sim->NodeAlive(e.node, t)) {
              break;
            }
            sim->PartitionNode(e.node, t, t + e.duration_s);
            ++stats_.partitions;
            return true;
          case FaultType::kHeal:
            if (e.node >= sim->node_count() ||
                !sim->NodeAlive(e.node, t) || sim->NodeRoutable(e.node, t)) {
              break;
            }
            sim->HealNode(e.node, t);
            ++stats_.heals;
            return true;
          case FaultType::kInterrupt:
            break;  // Handled before the per-node path.
        }
        ++stats_.dropped_events;
        return false;
      };
      ev = spec_.scripted[next_scripted_++];
      if (ev.type == FaultType::kInterrupt) {
        pending_scripted_interrupt_ = true;
        delivered.push_back(ev);
      } else if (ev.rack != kInvalidNode) {
        // Rack-scoped: expand against the *current* node count
        // (round-robin striping, node m in rack m % racks) so correlated
        // failures follow the elastic cluster.
        NASHDB_DCHECK(spec_.racks > 0);
        for (NodeId m = ev.rack; m < sim->node_count();
             m += static_cast<NodeId>(spec_.racks)) {
          FaultEvent expanded = ev;
          expanded.node = m;
          if (deliver_one(expanded)) delivered.push_back(expanded);
        }
      } else if (deliver_one(ev)) {
        delivered.push_back(ev);
      }
      continue;
    } else if (src == kStochCrash) {
      next_crash_ = DrawExponential(spec_.mttf_s);
      const NodeId victim = PickLiveVictim(*sim, t);
      if (victim == kInvalidNode) {
        ++stats_.dropped_events;
        continue;
      }
      ev.type = FaultType::kCrash;
      ev.time = t;
      ev.node = victim;
      ev.duration_s = spec_.mttr_s > 0.0
                          ? -spec_.mttr_s * std::log(1.0 - rng_.NextDouble())
                          : kNeverRecovers;
      // MTTR recoveries are implicit: FailNode records the revival time,
      // so future-time liveness queries see it without another event.
      sim->FailNode(victim, t, t + ev.duration_s);
      ++stats_.crashes;
    } else {
      next_straggle_ = DrawExponential(spec_.straggle_every_s);
      const NodeId victim = PickLiveVictim(*sim, t);
      if (victim == kInvalidNode) {
        ++stats_.dropped_events;
        continue;
      }
      ev.type = FaultType::kSlowdown;
      ev.time = t;
      ev.node = victim;
      ev.factor = spec_.straggle_factor;
      ev.duration_s = spec_.straggle_for_s;
      sim->SlowNode(victim, ev.factor, t + ev.duration_s);
      ++stats_.slowdowns;
    }
    delivered.push_back(ev);
  }
  clock_ = now;
  return delivered;
}

std::vector<std::size_t> FaultScheduler::InterruptedMoves(
    const TransitionPlan& plan, SimTime now) {
  (void)now;
  std::vector<std::size_t> interrupted;
  const bool all = pending_scripted_interrupt_;
  pending_scripted_interrupt_ = false;
  for (std::size_t i = 0; i < plan.moves.size(); ++i) {
    if (plan.moves[i].transfer_tuples == 0) continue;
    if (all || (spec_.interrupt_prob > 0.0 &&
                rng_.Bernoulli(spec_.interrupt_prob))) {
      interrupted.push_back(i);
    }
  }
  stats_.transfer_interrupts += interrupted.size();
  return interrupted;
}

}  // namespace nashdb
