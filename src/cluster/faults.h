#ifndef NASHDB_CLUSTER_FAULTS_H_
#define NASHDB_CLUSTER_FAULTS_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "cluster/sim.h"
#include "common/random.h"
#include "common/status.h"
#include "common/types.h"
#include "transition/planner.h"

namespace nashdb {

/// Kind of one injected fault event.
enum class FaultType {
  kCrash,         ///< Crash-stop node failure (backlog lost).
  kRecover,       ///< Explicit revival of a dead node.
  kSlowdown,      ///< Straggler onset: per-node throughput multiplier.
  kInterrupt,     ///< Mid-transition transfer interruption marker.
  kPartition,     ///< Network partition: alive for billing, unroutable.
  kHeal,          ///< Partition heal: node becomes routable again.
};

/// One scripted fault event. `node` addresses the cluster node occupying
/// that id *at delivery time* (node identities are carried across
/// transitions by the plan's old→new matching); events naming a node id
/// outside the current cluster, or crashes of already-dead nodes, are
/// dropped and counted.
///
/// `rack != kInvalidNode` makes the event rack-scoped: at delivery time
/// it expands into one per-node event for every current node striped into
/// that rack (rack_of(m) = m % racks — round-robin striping, so racks
/// stay balanced as the cluster elastically grows and shrinks). The
/// expansion happens against the *current* node count, which is how
/// correlated rack failures track an elastic cluster.
struct FaultEvent {
  SimTime time = 0.0;
  FaultType type = FaultType::kCrash;
  NodeId node = kInvalidNode;
  /// Rack-scoped events: target rack id (kInvalidNode = node-scoped).
  NodeId rack = kInvalidNode;
  /// kSlowdown: throughput multiplier in (0, 1].
  double factor = 1.0;
  /// kCrash / kSlowdown / kPartition: seconds until auto-recovery /
  /// speed restore / heal (kNeverRecovers = until explicit
  /// recovery/heal or replacement).
  SimTime duration_s = kNeverRecovers;
};

/// A complete fault scenario: scripted events plus stochastic models.
/// Parsed from the `--faults` spec string, whose grammar is
/// semicolon-separated clauses (whitespace ignored):
///
///   crash@T:nID[:for=D]     crash node ID at time T, recover after D s
///   crash@T:rID[:for=D]     crash every node of rack ID (requires racks=)
///   recover@T:(n|r)ID       revive node ID / rack ID's dead nodes at T
///   slow@T:(n|r)ID:xF[:for=D]  target serves at F x nominal from T
///   partition@T:(n|r)ID[:for=D]  network partition: the target stays
///                           alive (billing, backlog) but is unroutable
///                           until healed (DESIGN.md §13)
///   heal@T:(n|r)ID          heal a partitioned node / rack at time T
///   interrupt@T             the next transition at/after T restarts every
///                           transfer once
///   racks=N                 topology: N racks, node m in rack m % N
///                           (required by any r-scoped clause)
///   mttf=S                  stochastic crash-stop: exponential
///                           inter-crash time with mean S seconds
///                           (cluster-wide); victim uniform among live
///   mttr=S                  crashed nodes recover after Exp(S) seconds
///                           (omitted = crashes are permanent)
///   straggle-every=S        stochastic straggler onsets, Exp(S) apart
///   straggle-for=S          straggler episode length (default 600)
///   straggle-x=F            straggler speed factor (default 0.25)
///   pinterrupt=P            each transition transfer restarts once with
///                           probability P
///
/// Example: "racks=4;crash@600:r1:for=900;partition@1200:n3:for=300".
struct FaultSpec {
  std::vector<FaultEvent> scripted;  ///< Sorted by time (stable).
  std::size_t racks = 0;             ///< 0 = no rack topology declared.
  double mttf_s = 0.0;               ///< 0 = no stochastic crashes.
  double mttr_s = 0.0;               ///< 0 = stochastic crashes permanent.
  double straggle_every_s = 0.0;     ///< 0 = no stochastic stragglers.
  double straggle_for_s = 600.0;
  double straggle_factor = 0.25;
  double interrupt_prob = 0.0;

  /// True when the spec injects anything at all.
  bool Active() const {
    return !scripted.empty() || mttf_s > 0.0 || straggle_every_s > 0.0 ||
           interrupt_prob > 0.0;
  }

  /// Parses the `--faults` grammar above. Returns InvalidArgument with a
  /// clause-level message on malformed input.
  static Result<FaultSpec> Parse(std::string_view spec);
};

/// Tallies of everything a FaultScheduler delivered (all simulated-time
/// driven, hence deterministic for a fixed spec + seed).
struct FaultStats {
  std::size_t crashes = 0;
  std::size_t recoveries = 0;
  std::size_t slowdowns = 0;
  std::size_t partitions = 0;
  std::size_t heals = 0;
  std::size_t dropped_events = 0;
  std::size_t transfer_interrupts = 0;
};

/// Deterministic fault event source: replays scripted events and draws
/// stochastic ones (crash/recover via an MTTF/MTTR model, straggler
/// episodes, transfer interruptions) from a seeded Rng, delivering them
/// into a ClusterSim as simulated-time state changes. All randomness
/// comes from the single seed, and delivery happens on the (serial)
/// driver loop, so identical spec + seed reproduce the exact same fault
/// history regardless of host, run, or reconfiguration thread count.
///
/// Concurrency contract (thread-safety audit, DESIGN.md §9): serial by
/// design, like ClusterSim — the single-consumer driver loop is the only
/// caller, so there are no mutexes and no NASHDB_GUARDED_BY annotations
/// here. Sharing a FaultScheduler across threads would break replay
/// determinism before it broke memory safety.
class FaultScheduler {
 public:
  FaultScheduler(FaultSpec spec, std::uint64_t seed);

  /// Delivers every event due at or before `now` into `sim`, in event
  /// time order, and returns the delivered events (with stochastic
  /// victims resolved) for driver-side accounting. Monotonic: `now` must
  /// not go backwards across calls.
  std::vector<FaultEvent> AdvanceTo(SimTime now, ClusterSim* sim);

  /// Indices of `plan->moves` whose transfer is interrupted and must
  /// restart once, for a transition applied at `now`: every move with a
  /// non-empty transfer when a scripted `interrupt@T <= now` is pending,
  /// plus independent Bernoulli(interrupt_prob) draws per move.
  std::vector<std::size_t> InterruptedMoves(const TransitionPlan& plan,
                                            SimTime now);

  const FaultStats& stats() const { return stats_; }

 private:
  /// Next stochastic crash/straggle onset times (kNeverRecovers = model
  /// disabled or exhausted).
  SimTime DrawExponential(double mean_s);
  /// Uniformly random live node at `at`, or kInvalidNode if none.
  NodeId PickLiveVictim(const ClusterSim& sim, SimTime at);

  FaultSpec spec_;
  Rng rng_;
  std::size_t next_scripted_ = 0;
  SimTime next_crash_ = kNeverRecovers;
  SimTime next_straggle_ = kNeverRecovers;
  SimTime clock_ = 0.0;
  bool pending_scripted_interrupt_ = false;
  FaultStats stats_;
};

}  // namespace nashdb

#endif  // NASHDB_CLUSTER_FAULTS_H_
