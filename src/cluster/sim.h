#ifndef NASHDB_CLUSTER_SIM_H_
#define NASHDB_CLUSTER_SIM_H_

#include <algorithm>
#include <cstddef>
#include <limits>
#include <vector>

#include "common/logging.h"
#include "common/types.h"
#include "replication/cluster_config.h"
#include "transition/planner.h"

namespace nashdb {

/// Physical model of the simulated cluster. This substitutes for the
/// paper's EC2 + PostgreSQL testbed: nodes are shared-nothing machines
/// whose disk serves queued fragment reads FIFO at `tuples_per_second`;
/// every query pays a one-time `span_overhead_s` on each node it touches
/// (the paper measured this φ as ~350 ms on AWS); transitions stream
/// tuples at `transfer_tuples_per_second` through the receiving node's
/// queue; each provisioned node accrues rent continuously.
struct ClusterSimOptions {
  double tuples_per_second = 2.0e6;
  double transfer_tuples_per_second = 10.0e6;
  double span_overhead_s = 0.35;
  /// Rent per node per hour, in cents.
  Money node_cost_per_hour = 10.0;
};

/// Sentinel recovery time for crash-stop failures with no scheduled
/// repair: the node stays dead until a transition replaces it or an
/// explicit RecoverNode event revives it.
inline constexpr SimTime kNeverRecovers =
    std::numeric_limits<SimTime>::infinity();

/// Discrete "virtual time" simulator for an elastic cluster executing
/// fragment reads. Queries are admitted in arrival order; each node is a
/// FIFO resource whose backlog is tracked as the time at which it next
/// falls idle. The wait time W(m) exposed to routers is exactly the
/// paper's §8 queue model (pending work, measured in seconds of disk
/// time).
///
/// Failure model (see DESIGN.md §8): every node additionally carries
/// liveness (`down_until_`) and a throughput multiplier (`speed_factor_`
/// until `slow_until_`), both indexed by simulated time so that scheduled
/// recoveries are visible to future-time queries (the driver's retry
/// logic). Crash-stop semantics: a crash discards the node's queued
/// backlog (the work is lost; already-recorded query completions are not
/// revised — the sim accounts completions eagerly at enqueue time) and
/// the node rejects reads until its recovery time. A dead node keeps
/// accruing rent: it is provisioned until a transition decommissions or
/// replaces it, matching cloud billing.
///
/// Concurrency contract (thread-safety audit, DESIGN.md §9): ClusterSim
/// is single-threaded by design — every member is driven from the
/// driver's serial query loop at simulated-time boundaries, so replays
/// stay deterministic regardless of reconfiguration threads. It therefore
/// holds no mutexes and carries no NASHDB_GUARDED_BY annotations
/// (common/thread_annotations.h); do not share one instance across
/// threads. The multithreaded pieces of the system (ThreadPool,
/// metrics::Registry, PercentileTracker) are the annotated ones.
class ClusterSim {
 public:
  explicit ClusterSim(const ClusterSimOptions& options);

  const ClusterSimOptions& options() const { return options_; }

  /// Replaces the active configuration at simulated time `now`.
  ///
  /// With a plan, each receiving node's queue is charged the transfer
  /// time for the tuples copied onto it, transfer volume is added to the
  /// running counter, and per-node state follows the plan's old→new
  /// matching: a transitioned machine keeps its backlog, liveness, and
  /// speed state; a machine that is *dead* at `now` is replaced by a
  /// fresh one (alive, idle, full speed — the failure-aware planner
  /// already priced the full re-copy); a decommissioned machine
  /// (new_node == kInvalidNode) is billed for the rent needed to drain
  /// its remaining backlog before release (dead nodes have none). Old
  /// nodes missing from the plan entirely are treated as decommissioned.
  ///
  /// With `plan == nullptr` the call is an explicit "teleport": every
  /// node of the new configuration starts fresh (idle, alive, full
  /// speed), no transfer or drain rent is charged, and all previous
  /// per-node state — including backlog on removed nodes — is
  /// deliberately dropped. Tests and bootstrap shortcuts use this mode.
  /// Rent accrual switches to the new node count from `now` onward in
  /// both modes.
  ///
  /// `planned_dead` (optional, online reconfiguration — DESIGN.md §12) is
  /// the per-old-node dead bitmap the plan was computed against. An
  /// online transition applies retroactively at its boundary time after
  /// faults from inside the build window have already been delivered, so
  /// a matched node can be dead at `now` for two distinct reasons: dead
  /// at planning time (marked in the bitmap — the planner priced its
  /// replacement, so it becomes a fresh machine, as in the legacy path)
  /// or crashed inside the window (unmarked — the crash must ride the
  /// old→new matching, or the apply would silently resurrect it). For
  /// unmarked dead nodes the downtime, backlog base, and speed state are
  /// carried to the new node exactly like an alive transition. Passing
  /// nullptr keeps the legacy rule: any node dead at `now` is replaced.
  void ApplyConfig(const ClusterConfig& config, SimTime now,
                   const TransitionPlan* plan,
                   const std::vector<bool>* planned_dead = nullptr);

  std::size_t node_count() const { return busy_until_.size(); }

  /// Seconds of queued work remaining on `node` at time `now` (>= 0).
  SimTime WaitSeconds(NodeId node, SimTime now) const;

  /// The per-node next-idle times behind WaitSeconds
  /// (WaitSeconds(m, t) == max(0, BusyUntil()[m] - t)). The sim already
  /// maintains this array incrementally on every enqueue, transfer,
  /// transition, and fault, so the steady-state query path reads waits for
  /// candidate nodes in O(1) through a WaitView instead of materializing a
  /// per-scan O(node_count) wait vector (DESIGN.md §10).
  const std::vector<SimTime>& BusyUntil() const { return busy_until_; }

  /// Seconds needed to read `tuples` from disk at nominal speed.
  SimTime ReadSeconds(TupleCount tuples) const {
    return static_cast<double>(tuples) / options_.tuples_per_second;
  }

  /// Enqueues a fragment read of `tuples` on `node` for a query arriving
  /// at `now`; if `first_use_by_query`, the span overhead is charged
  /// first. The node must be alive at `now` (CHECK). Service time is
  /// divided by the node's speed factor at enqueue time (a straggling
  /// node serves slowly). Returns the completion time. Defined inline:
  /// this is the innermost call of the data plane (once per routed read),
  /// and the batched kernel lives in other translation units.
  SimTime EnqueueRead(NodeId node, TupleCount tuples, SimTime now,
                      bool first_use_by_query) {
    NASHDB_CHECK_LT(node, busy_until_.size());
    NASHDB_CHECK(NodeRoutable(node, now))
        << "read routed to dead or partitioned node " << node;
    SimTime start = std::max(busy_until_[node], now);
    if (first_use_by_query) start += options_.span_overhead_s;
    const double speed = NodeSpeed(node, now);
    const SimTime done = start + ReadSeconds(tuples) / speed;
    busy_until_[node] = done;
    read_tuples_ += tuples;
    return done;
  }

  /// Adds `tuples` of transfer ingest to a live node's queue outside a
  /// transition (e.g. re-sending an interrupted transfer) and counts the
  /// volume.
  void ChargeTransfer(NodeId node, TupleCount tuples, SimTime now);

  // --- Fault state (driven by FaultScheduler or tests) -------------------

  /// Crash-stop failure: `node` drops its queued backlog and rejects
  /// reads until `recover_at` (kNeverRecovers = until explicitly
  /// recovered or replaced by a transition).
  void FailNode(NodeId node, SimTime now, SimTime recover_at);

  /// Revives a dead node at `now` with an empty queue.
  void RecoverNode(NodeId node, SimTime now);

  /// Straggler: `node` serves reads at `factor` (0 < factor <= 1) times
  /// the nominal rate for reads enqueued before `until`.
  void SlowNode(NodeId node, double factor, SimTime until);

  /// Network partition: observer-relative liveness (DESIGN.md §13). The
  /// node is *alive* — it keeps its queued backlog, keeps accruing rent,
  /// and is never replaced by transitions — but it is unroutable: no new
  /// reads may be sent to it until `heal_at` (kNeverRecovers = until an
  /// explicit HealNode).
  void PartitionNode(NodeId node, SimTime now, SimTime heal_at);

  /// Heals a partitioned node at `now`: it becomes routable again with
  /// its queue intact.
  void HealNode(NodeId node, SimTime now);

  bool NodeAlive(NodeId node, SimTime at) const {
    return at >= down_until_[node];
  }
  /// Routable = alive and not behind a network partition. Routers and the
  /// retry path must use this, not NodeAlive: a partitioned node is alive
  /// for billing and transitions but must not receive reads.
  bool NodeRoutable(NodeId node, SimTime at) const {
    return at >= down_until_[node] && at >= unroutable_until_[node];
  }
  /// Time at which `node` is next routable (<= `at` if already routable):
  /// max of its crash-recovery and partition-heal times.
  SimTime RoutableUntil(NodeId node) const {
    return std::max(down_until_[node], unroutable_until_[node]);
  }
  /// Time at which `node` is next alive (<= `at` if already alive);
  /// kNeverRecovers when the node needs repair or explicit recovery.
  SimTime DownUntil(NodeId node) const { return down_until_[node]; }
  double NodeSpeed(NodeId node, SimTime at) const {
    return at < slow_until_[node] ? speed_factor_[node] : 1.0;
  }
  std::size_t LiveNodeCount(SimTime at) const;
  /// Nodes alive but partitioned (unroutable) at `at`.
  std::size_t PartitionedNodeCount(SimTime at) const;

  /// Total rent accrued through `now` (cents).
  Money AccruedCost(SimTime now) const;

  /// Total tuples moved by transitions so far.
  TupleCount TotalTransferredTuples() const { return transferred_tuples_; }

  /// Transfer window of the most recent plan-apply: the largest per-node
  /// transfer ingest (seconds of queue time) the plan charged. Transfers
  /// are modeled as background load on the receiving nodes' queues —
  /// reads routed there during this window queue behind the copy — and
  /// this is how long that window lasts on the slowest receiver
  /// (exported as the sim.transfer_window_s metric). 0 after a teleport.
  SimTime LastTransferWindowSeconds() const {
    return last_transfer_window_s_;
  }

  /// Total tuples served to queries so far.
  TupleCount TotalReadTuples() const { return read_tuples_; }

 private:
  ClusterSimOptions options_;
  std::vector<SimTime> busy_until_;
  /// Node m is dead while t < down_until_[m] (0 = always alive so far).
  std::vector<SimTime> down_until_;
  /// Node m is partitioned (alive, unroutable) while
  /// t < unroutable_until_[m] (0 = never partitioned so far).
  std::vector<SimTime> unroutable_until_;
  /// speed_factor_[m] applies to reads enqueued before slow_until_[m].
  std::vector<SimTime> slow_until_;
  std::vector<double> speed_factor_;
  // Rent accounting: cost accrued up to `cost_marker_time_` plus
  // node_count * rate afterwards.
  Money accrued_cost_ = 0.0;
  SimTime cost_marker_time_ = 0.0;
  std::size_t billed_nodes_ = 0;
  TupleCount transferred_tuples_ = 0;
  TupleCount read_tuples_ = 0;
  SimTime last_transfer_window_s_ = 0.0;
};

}  // namespace nashdb

#endif  // NASHDB_CLUSTER_SIM_H_
