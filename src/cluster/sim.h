#ifndef NASHDB_CLUSTER_SIM_H_
#define NASHDB_CLUSTER_SIM_H_

#include <cstddef>
#include <vector>

#include "common/types.h"
#include "replication/cluster_config.h"
#include "transition/planner.h"

namespace nashdb {

/// Physical model of the simulated cluster. This substitutes for the
/// paper's EC2 + PostgreSQL testbed: nodes are shared-nothing machines
/// whose disk serves queued fragment reads FIFO at `tuples_per_second`;
/// every query pays a one-time `span_overhead_s` on each node it touches
/// (the paper measured this φ as ~350 ms on AWS); transitions stream
/// tuples at `transfer_tuples_per_second` through the receiving node's
/// queue; each provisioned node accrues rent continuously.
struct ClusterSimOptions {
  double tuples_per_second = 2.0e6;
  double transfer_tuples_per_second = 10.0e6;
  double span_overhead_s = 0.35;
  /// Rent per node per hour, in cents.
  Money node_cost_per_hour = 10.0;
};

/// Discrete "virtual time" simulator for an elastic cluster executing
/// fragment reads. Queries are admitted in arrival order; each node is a
/// FIFO resource whose backlog is tracked as the time at which it next
/// falls idle. The wait time W(m) exposed to routers is exactly the
/// paper's §8 queue model (pending work, measured in seconds of disk
/// time).
class ClusterSim {
 public:
  explicit ClusterSim(const ClusterSimOptions& options);

  const ClusterSimOptions& options() const { return options_; }

  /// Replaces the active configuration at simulated time `now`.
  /// If `plan` is non-null, each receiving node's queue is charged the
  /// transfer time for the tuples copied onto it, and transfer volume is
  /// added to the running transfer counter. Rent accrual switches to the
  /// new node count from `now` onward.
  void ApplyConfig(const ClusterConfig& config, SimTime now,
                   const TransitionPlan* plan);

  std::size_t node_count() const { return busy_until_.size(); }

  /// Seconds of queued work remaining on `node` at time `now` (>= 0).
  SimTime WaitSeconds(NodeId node, SimTime now) const;

  /// Seconds needed to read `tuples` from disk.
  SimTime ReadSeconds(TupleCount tuples) const {
    return static_cast<double>(tuples) / options_.tuples_per_second;
  }

  /// Enqueues a fragment read of `tuples` on `node` for a query arriving
  /// at `now`; if `first_use_by_query`, the span overhead is charged
  /// first. Returns the completion time.
  SimTime EnqueueRead(NodeId node, TupleCount tuples, SimTime now,
                      bool first_use_by_query);

  /// Total rent accrued through `now` (cents).
  Money AccruedCost(SimTime now) const;

  /// Total tuples moved by transitions so far.
  TupleCount TotalTransferredTuples() const { return transferred_tuples_; }

  /// Total tuples served to queries so far.
  TupleCount TotalReadTuples() const { return read_tuples_; }

 private:
  ClusterSimOptions options_;
  std::vector<SimTime> busy_until_;
  // Rent accounting: cost accrued up to `cost_marker_time_` plus
  // node_count * rate afterwards.
  Money accrued_cost_ = 0.0;
  SimTime cost_marker_time_ = 0.0;
  std::size_t billed_nodes_ = 0;
  TupleCount transferred_tuples_ = 0;
  TupleCount read_tuples_ = 0;
};

}  // namespace nashdb

#endif  // NASHDB_CLUSTER_SIM_H_
