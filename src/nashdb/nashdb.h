#ifndef NASHDB_NASHDB_H_
#define NASHDB_NASHDB_H_

/// \file
/// Umbrella header for the NashDB library — a from-scratch reproduction of
/// "NashDB: An End-to-End Economic Method for Elastic Database
/// Fragmentation, Replication, and Provisioning" (SIGMOD 2018).
///
/// The pipeline, in paper order:
///   1. value/      — tuple value estimation over a scan window (§4)
///   2. fragment/   — fragmentation algorithms (§5) and baselines
///   3. replication — Eq. 9 replica counts + BFFD packing (§6)
///   4. transition/ — minimal-transfer cluster transitions (§7)
///   5. routing/    — Max-of-mins scan routing (§8)
///   6. engine/     — the end-to-end controller + simulation driver
///   7. baselines/  — E-Store-like and SWORD-like end-to-end systems
///   8. workload/   — TPC-H-style / Bernoulli / Random / trace workloads
///   9. cluster/    — the elastic-cluster simulator substrate

#include "baselines/hypergraph_system.h"
#include "baselines/market_sim.h"
#include "baselines/threshold_system.h"
#include "cluster/faults.h"
#include "cluster/sim.h"
#include "common/metrics.h"
#include "common/query.h"
#include "common/random.h"
#include "common/stats.h"
#include "common/status.h"
#include "common/types.h"
#include "engine/config_index.h"
#include "engine/driver.h"
#include "engine/nashdb_system.h"
#include "engine/sharded_driver.h"
#include "engine/system.h"
#include "fragment/fragmenter.h"
#include "fragment/prefix_stats.h"
#include "fragment/scheme.h"
#include "replication/cluster_config.h"
#include "replication/incremental.h"
#include "replication/nash.h"
#include "replication/packer.h"
#include "replication/replication.h"
#include "routing/router.h"
#include "scenario/scenario.h"
#include "storage/storage_cluster.h"
#include "storage/table.h"
#include "transition/hungarian.h"
#include "transition/planner.h"
#include "value/estimator.h"
#include "value/value_profile.h"
#include "value/value_tree.h"
#include "workload/streaming.h"
#include "workload/synthetic.h"
#include "workload/tpch.h"
#include "workload/workload.h"

#endif  // NASHDB_NASHDB_H_
