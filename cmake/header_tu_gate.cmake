# Header self-containment gate (DESIGN.md §14, gate `header-tu`).
#
# Every public header under src/ must compile as the *sole* include of a
# translation unit — no reliance on what a lucky includer happened to pull
# in first. This generates one tiny TU per header (cmake/header_tu.cc.in)
# and compiles the set as an OBJECT library that is EXCLUDE_FROM_ALL, so
# ordinary builds never pay for it. It runs when asked for explicitly:
#
#   cmake --build build --target header_tu_gate
#
# which is what `tools/check.sh --static` and the `lint` ctest label do.
# A header that stops being self-contained fails this target with a plain
# compiler error naming the offending header's TU.
#
# CONFIGURE_DEPENDS re-globs at build time, so adding or deleting a header
# does not require a manual re-configure.

file(GLOB_RECURSE nashdb_public_headers CONFIGURE_DEPENDS
     "${CMAKE_SOURCE_DIR}/src/*.h")
list(SORT nashdb_public_headers)

set(nashdb_header_tus "")
foreach(header IN LISTS nashdb_public_headers)
  # Includes are src-relative repo-wide ("common/status.h"), so the TU
  # includes the same path every consumer writes.
  file(RELATIVE_PATH NASHDB_HEADER "${CMAKE_SOURCE_DIR}/src" "${header}")
  string(REPLACE "/" "_" tu_name "${NASHDB_HEADER}")
  string(REGEX REPLACE "\\.h$" ".tu.cc" tu_name "${tu_name}")
  set(tu "${CMAKE_BINARY_DIR}/header_tu/${tu_name}")
  configure_file("${CMAKE_SOURCE_DIR}/cmake/header_tu.cc.in" "${tu}" @ONLY)
  list(APPEND nashdb_header_tus "${tu}")
endforeach()

add_library(header_tu_gate OBJECT EXCLUDE_FROM_ALL ${nashdb_header_tus})
set_target_properties(header_tu_gate PROPERTIES LINKER_LANGUAGE CXX)
